//! The explicit base graphs `G_k ∈ 𝒢_k` (paper §4.6, Lemma 13) and their
//! random lifts `G̃_k` (Lemma 14 / Corollary 15).
//!
//! Cluster sizes follow the paper exactly: a cluster at hop distance `d`
//! from `c0` has `2β^{k+1}(β/2)^{k+1-d}` nodes. Intra-cluster structure
//! realizing a self-loop `(v, v, β^i)` is `t = |S(v)|/β^i` disjoint
//! cliques of size `β^i` plus a perfect matching between clique `j` and
//! clique `t/2 + j`. Adjacent clusters are wired group-by-group with
//! complete bipartite gadgets `K_{β^{i+1}, 2β^i}`.
//!
//! The clique partition is retained so Lemma 13's independence bound
//! `α(G_k[S(v)]) ≤ |S(v)|/β^{ψ(v)}` is a *verified certificate* (a clique
//! cover of that size), not just a claim.

use crate::cluster_tree::{ClusterTree, CtNodeId};
use localavg_graph::lift::{lift, Lifted};
use localavg_graph::rng::Rng;
use localavg_graph::{analysis, Graph, GraphBuilder, GraphError, NodeId};

/// Total node count of `G_k` with parameter β, computed from the paper's
/// cluster-size formula without building the graph (`None` on overflow
/// or a non-integral cluster size). This is what lets the hard-instance
/// generator families ([`crate::families`]) pick the largest β fitting a
/// target size deterministically.
pub fn gk_node_count(k: usize, beta: u64) -> Option<u64> {
    let ct = ClusterTree::new(k);
    let mut total: u64 = 0;
    for (_, node) in ct.nodes() {
        let d = node.depth;
        // 2 β^{k+1} (β/2)^{k+1-d} = β^{2k+2-d} 2^{d-k}.
        let exp = (2 * k + 2).checked_sub(d)?;
        let pow = beta.checked_pow(exp as u32)?;
        let z = if d >= k {
            pow.checked_mul(1u64 << (d - k))?
        } else {
            let div = 1u64 << (k - d);
            if pow % div != 0 {
                return None;
            }
            pow / div
        };
        total = total.checked_add(z)?;
    }
    Some(total)
}

/// A constructed base graph with full cluster metadata.
#[derive(Debug, Clone)]
pub struct BaseGraph {
    /// The graph itself.
    pub graph: Graph,
    /// The skeleton it realizes.
    pub ct: ClusterTree,
    /// The parameter β (even, ≥ 4).
    pub beta: u64,
    /// Cluster id per node.
    pub cluster_of: Vec<CtNodeId>,
    /// Node list per cluster.
    pub cluster_nodes: Vec<Vec<NodeId>>,
    /// Clique partition of every non-`c0` cluster (Lemma 13 certificate).
    pub cliques: Vec<Vec<NodeId>>,
}

impl BaseGraph {
    /// Builds `G_k` for the given `k` and even `β >= 4`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] when β is odd or < 4, or
    /// when the construction would exceed `max_nodes`.
    pub fn build(k: usize, beta: u64, max_nodes: usize) -> Result<BaseGraph, GraphError> {
        if beta < 4 || !beta.is_multiple_of(2) {
            return Err(GraphError::InvalidParameters(format!(
                "β must be even and >= 4, got {beta}"
            )));
        }
        let ct = ClusterTree::new(k);

        // Cluster size at depth d: 2 β^{k+1} (β/2)^{k+1-d} = β^{2k+2-d} 2^{d-k}.
        let size_at = |d: usize| -> Option<u64> {
            let exp = (2 * k + 2).checked_sub(d)?;
            let pow = beta.checked_pow(exp as u32)?;
            if d >= k {
                pow.checked_mul(1u64 << (d - k))
            } else {
                let div = 1u64 << (k - d);
                (pow % div == 0).then(|| pow / div)
            }
        };

        let mut total: u64 = 0;
        let mut sizes = Vec::with_capacity(ct.node_count());
        for (_, node) in ct.nodes() {
            let z = size_at(node.depth).ok_or_else(|| {
                GraphError::InvalidParameters("cluster size overflow".to_string())
            })?;
            sizes.push(z);
            total += z;
        }
        if total as usize > max_nodes {
            return Err(GraphError::InvalidParameters(format!(
                "G_{k} with β={beta} would have {total} nodes (cap {max_nodes})"
            )));
        }

        // Allocate node ranges per cluster.
        let mut cluster_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(ct.node_count());
        let mut cluster_of = Vec::with_capacity(total as usize);
        let mut next: NodeId = 0;
        for (c, _) in ct.nodes() {
            let z = sizes[c] as usize;
            cluster_nodes.push((next..next + z).collect());
            cluster_of.extend(std::iter::repeat_n(c, z));
            next += z;
        }
        let mut builder = GraphBuilder::new(total as usize);
        let mut cliques = Vec::new();

        // Intra-cluster structure for each self-loop (v, v, β^i).
        for (c, node) in ct.nodes() {
            let Some(i) = node.psi else { continue };
            let clique_size = beta.pow(i as u32) as usize;
            let members = &cluster_nodes[c];
            assert_eq!(members.len() % clique_size, 0, "cluster divisible");
            let t = members.len() / clique_size;
            assert!(t >= 2 && t.is_multiple_of(2), "even clique count (t={t})");
            let clique_at = |j: usize| &members[j * clique_size..(j + 1) * clique_size];
            for j in 0..t {
                let cl = clique_at(j);
                for a in 0..cl.len() {
                    for b in (a + 1)..cl.len() {
                        builder.try_add(cl[a], cl[b]);
                    }
                }
                cliques.push(cl.to_vec());
            }
            // Perfect matchings between clique j and clique t/2 + j.
            for j in 0..t / 2 {
                let left = clique_at(j);
                let right = clique_at(t / 2 + j);
                for (a, b) in left.iter().zip(right.iter()) {
                    builder.try_add(*a, *b);
                }
            }
        }

        // Inter-cluster gadgets: parent edge (v, u, 2β^i) / (u, v, β^{i+1}).
        for edge in ct.edges() {
            if edge.from == edge.to || !edge.doubled {
                continue; // realize each cluster pair once, from the 2β^i side
            }
            let (v, u, i) = (edge.from, edge.to, edge.exponent);
            let group_v = beta.pow(i as u32 + 1) as usize;
            let group_u = 2 * beta.pow(i as u32) as usize;
            let sv = &cluster_nodes[v];
            let su = &cluster_nodes[u];
            assert_eq!(sv.len() % group_v, 0);
            assert_eq!(su.len() % group_u, 0);
            let groups = sv.len() / group_v;
            assert_eq!(groups, su.len() / group_u, "matching group counts");
            for gidx in 0..groups {
                let gv = &sv[gidx * group_v..(gidx + 1) * group_v];
                let gu = &su[gidx * group_u..(gidx + 1) * group_u];
                for &a in gv {
                    for &b in gu {
                        builder.try_add(a, b);
                    }
                }
            }
        }

        Ok(BaseGraph {
            graph: builder.build(),
            ct,
            beta,
            cluster_of,
            cluster_nodes,
            cliques,
        })
    }

    /// The nodes of `S(c0)` (the big independent cluster).
    pub fn s0(&self) -> &[NodeId] {
        &self.cluster_nodes[0]
    }

    /// The nodes of `S(c1)`.
    pub fn s1(&self) -> &[NodeId] {
        &self.cluster_nodes[1]
    }

    /// The directional edge label exponent from `x`'s cluster to `y`'s
    /// cluster (Definition 8), with a flag for self (intra-cluster) edges.
    ///
    /// Returns `(exponent, is_self)`.
    ///
    /// # Panics
    ///
    /// Panics if the clusters are not adjacent in the skeleton (no such
    /// graph edge can exist).
    pub fn out_label(&self, x: NodeId, y: NodeId) -> (usize, bool) {
        let (cx, cy) = (self.cluster_of[x], self.cluster_of[y]);
        if cx == cy {
            return (self.ct.psi(cx), true);
        }
        let e = self
            .ct
            .edges()
            .iter()
            .find(|e| e.from == cx && e.to == cy)
            .unwrap_or_else(|| panic!("clusters {cx} and {cy} not adjacent"));
        (e.exponent, false)
    }

    /// Verifies the 𝒢_k membership requirements: every node of `S(u)` has
    /// exactly `x` neighbors in `S(v)` for every skeleton edge `(u, v, x)`
    /// (§4.3), and `S(c0)` is independent.
    pub fn verify_requirements(&self) -> Result<(), String> {
        let g = &self.graph;
        for edge in self.ct.edges() {
            let want = edge.value(self.beta) as usize;
            for &x in &self.cluster_nodes[edge.from] {
                let have = g
                    .neighbor_ids(x)
                    .filter(|&y| self.cluster_of[y] == edge.to && (edge.from != edge.to || y != x))
                    .count();
                if have != want {
                    return Err(format!(
                        "node {x} in cluster {} has {have} neighbors in cluster {} (want {want})",
                        edge.from, edge.to
                    ));
                }
            }
        }
        for &a in self.s0() {
            for y in g.neighbor_ids(a) {
                if self.cluster_of[y] == 0 {
                    return Err(format!("S(c0) not independent: edge {{{a}, {y}}}"));
                }
            }
        }
        Ok(())
    }

    /// Lemma 13's independence certificate: for every cluster `v != c0`,
    /// the recorded clique cover shows `α(G[S(v)]) <= |S(v)| / β^{ψ(v)}`.
    ///
    /// Returns an error if some recorded "clique" is not actually complete.
    pub fn verify_clique_cover(&self) -> Result<(), String> {
        for clique in &self.cliques {
            for i in 0..clique.len() {
                for j in (i + 1)..clique.len() {
                    if !self.graph.has_edge(clique[i], clique[j]) {
                        return Err(format!(
                            "clique pair {{{}, {}}} missing an edge",
                            clique[i], clique[j]
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A lifted lower-bound graph `G̃_k` with cluster metadata mapped through
/// the covering map.
#[derive(Debug, Clone)]
pub struct LiftedGk {
    /// The base construction (metadata; its graph is the lift's base).
    pub base: BaseGraph,
    /// The lifted graph and covering map.
    pub lifted: Lifted,
}

impl LiftedGk {
    /// Lifts a base graph with a uniformly random order-`q` lift
    /// (§4.5, \[ALM02\]).
    pub fn build(base: BaseGraph, q: usize, rng: &mut Rng) -> LiftedGk {
        let lifted = lift(&base.graph, q, rng);
        LiftedGk { base, lifted }
    }

    /// The lifted graph.
    pub fn graph(&self) -> &Graph {
        &self.lifted.graph
    }

    /// Cluster of a lifted node.
    pub fn cluster_of(&self, x: NodeId) -> CtNodeId {
        self.base.cluster_of[self.lifted.project(x)]
    }

    /// All lifted nodes of cluster `c`.
    pub fn cluster_nodes(&self, c: CtNodeId) -> Vec<NodeId> {
        self.base.cluster_nodes[c]
            .iter()
            .flat_map(|&v| self.lifted.fiber(v))
            .collect()
    }

    /// Lifted `S(c0)`.
    pub fn s0(&self) -> Vec<NodeId> {
        self.cluster_nodes(0)
    }

    /// Directional edge label (Definition 8) in the lifted graph.
    pub fn out_label(&self, x: NodeId, y: NodeId) -> (usize, bool) {
        self.base
            .out_label(self.lifted.project(x), self.lifted.project(y))
    }

    /// Fraction of `S(c0)` nodes whose radius-`k` view is a tree —
    /// Corollary 15 lower-bounds this by `1 - 1/β` for the paper's `q`.
    pub fn s0_tree_like_fraction(&self, k: usize) -> f64 {
        let s0 = self.s0();
        if s0.is_empty() {
            return 1.0;
        }
        let good = s0
            .iter()
            .filter(|&&v| analysis::view_is_tree(self.graph(), v, k))
            .count();
        good as f64 / s0.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BaseGraph {
        BaseGraph::build(1, 4, 2_000_000).expect("G_1 with β=4")
    }

    #[test]
    fn gk_node_count_matches_built_graphs() {
        for (k, beta) in [(0usize, 4u64), (1, 4), (1, 6), (2, 4)] {
            let predicted = gk_node_count(k, beta).expect("in range");
            let built = BaseGraph::build(k, beta, 10_000_000).expect("buildable");
            assert_eq!(built.graph.n() as u64, predicted, "k={k}, β={beta}");
        }
        // Overflow is reported, not wrapped (β^{2k+2} blows past u64).
        assert_eq!(gk_node_count(2, 1 << 22), None);
    }

    #[test]
    fn sizes_match_paper_formula() {
        let b = small();
        // k=1, β=4: depth 0: 2*16*8 = β^4/2 = 128; depth 1: 64; depth 2: 32.
        assert_eq!(b.cluster_nodes[0].len(), 128);
        for (c, node) in b.ct.nodes() {
            let expect = match node.depth {
                0 => 128,
                1 => 64,
                2 => 32,
                _ => unreachable!(),
            };
            assert_eq!(b.cluster_nodes[c].len(), expect, "cluster {c}");
        }
    }

    #[test]
    fn requirements_hold_for_k1() {
        let b = small();
        b.verify_requirements().expect("biregularity requirements");
        b.verify_clique_cover().expect("clique cover certificate");
    }

    #[test]
    fn requirements_hold_for_k2() {
        let b = BaseGraph::build(2, 4, 2_000_000).expect("G_2 with β=4");
        b.verify_requirements().expect("biregularity requirements");
        b.verify_clique_cover().expect("clique cover certificate");
    }

    #[test]
    fn degree_matches_observation9() {
        let b = small();
        let beta = 4u64;
        // Internal non-c0 nodes: 2β^i neighbors for every i in 0..=k.
        // c0 nodes: sum of 2β^j for j in 0..=k. Leaves: 2β^{ψ}.
        for (c, _node) in b.ct.nodes() {
            // For internal nodes the exponent range is 0..=k plus the
            // double-weight ψ slot; easier to just check total degree
            // equals the sum of all out-labels.
            let total: usize =
                b.ct.out_edges(c)
                    .iter()
                    .map(|e| e.value(beta) as usize)
                    .sum();
            for &x in &b.cluster_nodes[c] {
                assert_eq!(b.graph.degree(x), total, "cluster {c}");
            }
        }
    }

    #[test]
    fn s0_is_independent() {
        let b = small();
        let mut in_s0 = vec![false; b.graph.n()];
        for &v in b.s0() {
            in_s0[v] = true;
        }
        assert!(analysis::is_independent_set(&b.graph, &in_s0));
    }

    #[test]
    fn s0_is_majority_for_large_beta() {
        // S(c0) contains the majority of the nodes once β is large relative
        // to k (the paper takes β = Ω(k² log k)).
        let b = BaseGraph::build(1, 8, 2_000_000).unwrap();
        assert!(b.s0().len() * 2 > b.graph.n());
        // With β too small relative to k the deeper levels dominate —
        // exactly why the theorem needs β large.
        let small_beta = BaseGraph::build(2, 4, 2_000_000).unwrap();
        assert!(small_beta.s0().len() * 2 <= small_beta.graph.n());
    }

    #[test]
    fn rejects_bad_beta() {
        assert!(BaseGraph::build(1, 3, 1_000_000).is_err());
        assert!(BaseGraph::build(1, 2, 1_000_000).is_err());
    }

    #[test]
    fn rejects_oversize() {
        assert!(BaseGraph::build(3, 8, 10_000).is_err());
    }

    #[test]
    fn out_labels() {
        let b = small();
        let s0 = b.s0()[0];
        let nbr_in_s1 = b
            .graph
            .neighbor_ids(s0)
            .find(|&y| b.cluster_of[y] == 1)
            .expect("c0-c1 edge");
        assert_eq!(b.out_label(s0, nbr_in_s1), (0, false)); // 2β^0 side
        assert_eq!(b.out_label(nbr_in_s1, s0), (1, false)); // β^1 side
                                                            // Intra-cluster edge in S(c1): self label ψ(c1) = 1.
        let s1_node = b.s1()[0];
        let s1_nbr = b
            .graph
            .neighbor_ids(s1_node)
            .find(|&y| b.cluster_of[y] == 1)
            .expect("intra edge");
        assert_eq!(b.out_label(s1_node, s1_nbr), (1, true));
    }

    #[test]
    fn lift_preserves_requirements() {
        let mut rng = Rng::seed_from(5);
        let lifted = LiftedGk::build(small(), 3, &mut rng);
        let g = lifted.graph();
        assert_eq!(g.n(), 288 * 3);
        // Lifts preserve per-cluster degrees: check a few nodes.
        for x in [0usize, 100, 500] {
            let base_deg = lifted.base.graph.degree(lifted.lifted.project(x));
            assert_eq!(g.degree(x), base_deg);
        }
        // Every lifted S(c0) node keeps its neighbors in lifted S(c1).
        let x = lifted.s0()[0];
        for y in g.neighbor_ids(x) {
            assert_ne!(lifted.cluster_of(y), 0, "lifted S(c0) stays independent");
        }
    }

    #[test]
    fn lifting_improves_tree_likeness() {
        let base = small();
        let mut rng = Rng::seed_from(9);
        let small_lift = LiftedGk::build(base.clone(), 1, &mut rng);
        let mut rng = Rng::seed_from(9);
        let big_lift = LiftedGk::build(base, 8, &mut rng);
        let f1 = small_lift.s0_tree_like_fraction(1);
        let f8 = big_lift.s0_tree_like_fraction(1);
        assert!(
            f8 >= f1,
            "larger lifts should look locally tree-like more often: {f8} vs {f1}"
        );
    }
}
