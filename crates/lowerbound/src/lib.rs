//! # localavg-lowerbound — the KMW-style lower bound machinery (paper §4)
//!
//! The paper's main result (Theorem 16) adapts the Kuhn–Moscibroda–
//! Wattenhofer lower bound to node-averaged complexity. The construction
//! pipeline, all implemented here:
//!
//! 1. [`cluster_tree`] — the *cluster tree skeletons* `CT_k` of §4.3
//!    (with self-loops, directed labels `2β^j` / `β^{j+1}`, and the
//!    internal/leaf structure of Observation 7). Regenerates Figure 1.
//! 2. [`base_graph`] — the explicit low-girth base graphs `G_k ∈ 𝒢_k` of
//!    §4.6 (Lemma 13): clusters sized `2β^{k+1}(β/2)^{k+1-d}`, intra-cluster
//!    cliques plus matchings, and complete-bipartite group gadgets between
//!    adjacent clusters.
//! 3. [`base_graph::LiftedGk`] — random lifts of order `q` (§4.5 /
//!    Lemma 12/14), producing the almost-high-girth graphs `G̃_k` of
//!    Corollary 15, together with measured girth and independence
//!    statistics.
//! 4. [`isomorphism`] — Algorithm 1 (`FindIsomorphism`, §C.1): builds the
//!    radius-k view isomorphism between nodes of `S(c0)` and `S(c1)` with
//!    tree-like views (Theorem 11), which is what forces any fast MIS
//!    algorithm to treat the two clusters identically.
//! 5. [`constructions`] — the doubled graph of §C.4 (maximal matching
//!    lower bound, Theorem 17) and radius-k tree-view extraction (the
//!    tree lower bound of Theorem 16).
//! 6. [`families`] — the constructions packaged as named generator
//!    entries (`lb/cluster-tree/*`, `lb/lift/*`, `lb/doubled/1`) so the
//!    sweep engine and the fuzz harness can treat hard instances as
//!    ordinary workloads.
//!
//! Experiment E9 runs MIS algorithms over these graphs and measures the
//! fraction of `S(c0)` still undecided after `k` rounds — the quantity
//! the proof of Theorem 16 bounds from below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base_graph;
pub mod cluster_tree;
pub mod constructions;
pub mod families;
pub mod isomorphism;
