//! Lower-bound constructions as first-class generator families.
//!
//! The paper's separations live on *specific hard instances* — the
//! cluster-tree base graphs `G_k` (§4.6), their random lifts `G̃_k`
//! (§4.5), and the doubled matching graphs (§C.4). Before this module
//! they were a passive library: experiments could not reach them through
//! the sweep engine, so every committed sweep only ever measured easy
//! random families. Each entry here wraps one construction as a
//! [`NamedGenerator`] (`lb/cluster-tree/1`, `lb/lift/2`, …) so
//! `exp sweep --generators lb/...` and `exp fuzz` can sample them like
//! any other family.
//!
//! The graph crate cannot host these entries (this crate depends on it),
//! so the composition happens downstream: `localavg_bench::generators`
//! builds the full registry from [`localavg_graph::gen::registry`] plus
//! [`generators`] here.
//!
//! # Size rounding
//!
//! Every family maps a target size `n` to a legal instance
//! deterministically:
//!
//! * `lb/cluster-tree/k` picks the largest even β ≥ 4 with
//!   [`gk_node_count`]`(k, β) <= max(n, count(k, 4))` — the instance is a
//!   pure function of `n` (the seed is unused; `G_k` is explicit).
//! * `lb/lift/k` lifts the β = 4 base graph by
//!   `q = max(1, n / count(k, 4))`; the lift permutations draw from the
//!   seed, so different seeds give different (equally hard) topologies.
//! * `lb/doubled/1` doubles a lifted `G̃_1` with
//!   `q = max(1, n / (2 · count(1, 4)))` and adds the cross matching.

use crate::base_graph::{gk_node_count, BaseGraph, LiftedGk};
use crate::constructions::DoubledGk;
use localavg_graph::gen::NamedGenerator;
use localavg_graph::rng::Rng;
use localavg_graph::{Graph, GraphError};

/// Hard ceiling on instance sizes these families will build; targets
/// above it are clamped (a sweep typo must not allocate the machine).
const MAX_NODES: usize = 8_000_000;

/// The largest even β ≥ 4 whose `G_k` fits into `max(n, count(k, 4))`
/// nodes — deterministic β-from-target rounding shared by the
/// `lb/cluster-tree/*` families.
fn beta_for_target(k: usize, n: usize) -> u64 {
    let cap = n.clamp(1, MAX_NODES) as u64;
    let mut beta = 4u64;
    while let Some(next) = gk_node_count(k, beta + 2) {
        if next > cap {
            break;
        }
        beta += 2;
    }
    beta
}

/// Every node of `G_k` has degree ≥ 2β ≥ 8 (the leaf clusters' parent
/// edge `β^ψ` plus self-loop `β^ψ` with ψ ≥ 1; every other cluster sums
/// to more), and lifts preserve degrees exactly.
fn md_lb(_n: usize) -> usize {
    8
}

/// The doubled graph adds one cross edge to every node.
fn md_doubled(_n: usize) -> usize {
    9
}

fn build_cluster_tree<const K: usize>(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    let beta = beta_for_target(K, n);
    BaseGraph::build(K, beta, MAX_NODES).map(|b| b.graph)
}

fn lifted_gk(k: usize, q: usize, seed: u64) -> Result<LiftedGk, GraphError> {
    let base = BaseGraph::build(k, 4, MAX_NODES)?;
    let mut rng = Rng::seed_from(seed);
    Ok(LiftedGk::build(base, q, &mut rng))
}

fn build_lift<const K: usize>(n: usize, seed: u64) -> Result<Graph, GraphError> {
    let base_n = gk_node_count(K, 4).expect("β=4 base fits in u64") as usize;
    let q = (n.clamp(1, MAX_NODES) / base_n).max(1);
    Ok(lifted_gk(K, q, seed)?.lifted.graph)
}

fn build_doubled(n: usize, seed: u64) -> Result<Graph, GraphError> {
    let base_n = gk_node_count(1, 4).expect("β=4 base fits in u64") as usize;
    let q = (n.clamp(1, MAX_NODES) / (2 * base_n)).max(1);
    Ok(DoubledGk::build(&lifted_gk(1, q, seed)?).graph)
}

/// The lower-bound hard-instance entries, ready to be composed with the
/// base families via [`localavg_graph::gen::GenRegistry::from_entries`].
pub fn generators() -> Vec<NamedGenerator> {
    vec![
        NamedGenerator::new(
            "lb/cluster-tree/1",
            "KMW base graph G_1 (§4.6), largest even β ≥ 4 fitting n",
            md_lb,
            build_cluster_tree::<1>,
        ),
        NamedGenerator::new(
            "lb/cluster-tree/2",
            "KMW base graph G_2 (§4.6), largest even β ≥ 4 fitting n",
            md_lb,
            build_cluster_tree::<2>,
        ),
        NamedGenerator::new(
            "lb/lift/1",
            "random order-q lift of G_1 at β=4 (§4.5), q = max(1, n/288)",
            md_lb,
            build_lift::<1>,
        ),
        NamedGenerator::new(
            "lb/lift/2",
            "random order-q lift of G_2 at β=4 (§4.5), q = max(1, n/3840)",
            md_lb,
            build_lift::<2>,
        ),
        NamedGenerator::new(
            "lb/doubled/1",
            "doubled lifted G_1 with cross matching (§C.4, Theorem 17)",
            md_doubled,
            build_doubled,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_rounding_is_monotone_and_floored() {
        assert_eq!(beta_for_target(1, 0), 4);
        assert_eq!(beta_for_target(1, 288), 4);
        // β=6 at k=1 needs 1152 nodes.
        assert_eq!(beta_for_target(1, 1151), 4);
        assert_eq!(beta_for_target(1, 1152), 6);
        let mut last = 0;
        for n in [100usize, 1000, 10_000, 100_000] {
            let b = beta_for_target(1, n);
            assert!(b >= last, "β must grow with the target");
            last = b;
        }
    }

    #[test]
    fn entries_build_deterministically_and_meet_min_degree() {
        for g in generators() {
            let a = g.build(500, 9).unwrap();
            let b = g.build(500, 9).unwrap();
            let ea: Vec<_> = a.edges().collect();
            let eb: Vec<_> = b.edges().collect();
            assert_eq!(ea, eb, "{} unstable", g.name());
            assert!(
                a.min_degree() >= g.min_degree(500),
                "{}: realized min degree {} below declared {}",
                g.name(),
                a.min_degree(),
                g.min_degree(500)
            );
        }
    }

    #[test]
    fn lift_scales_with_target() {
        let lift1 = generators()
            .into_iter()
            .find(|g| g.name() == "lb/lift/1")
            .unwrap();
        let small = lift1.build(100, 1).unwrap();
        assert_eq!(small.n(), 288); // q = 1
        let big = lift1.build(1000, 1).unwrap();
        assert_eq!(big.n(), 288 * 3); // q = 3
                                      // Lifts preserve the base degree sequence.
        assert_eq!(small.min_degree(), big.min_degree());
        assert_eq!(small.max_degree(), big.max_degree());
    }

    #[test]
    fn doubled_has_the_cross_matching_degrees() {
        let doubled = generators()
            .into_iter()
            .find(|g| g.name() == "lb/doubled/1")
            .unwrap();
        let d = doubled.build(576, 2).unwrap();
        assert_eq!(d.n(), 2 * 288);
        let plain = generators()
            .into_iter()
            .find(|g| g.name() == "lb/lift/1")
            .unwrap()
            .build(288, 2)
            .unwrap();
        // Every node gains exactly one cross edge over the lifted base.
        assert_eq!(d.min_degree(), plain.min_degree() + 1);
        assert_eq!(d.max_degree(), plain.max_degree() + 1);
    }

    #[test]
    fn cluster_tree_is_exact_and_seedless() {
        let ct1 = generators()
            .into_iter()
            .find(|g| g.name() == "lb/cluster-tree/1")
            .unwrap();
        let g = ct1.build(288, 0).unwrap();
        assert_eq!(g.n(), 288);
        // Every node sits inside its cluster gadgetry (G_k may be
        // disconnected across group towers, but never has isolated or
        // low-degree nodes).
        assert!(g.min_degree() >= 8);
        // The seed is unused: G_k is an explicit construction.
        let g2 = ct1.build(288, 77).unwrap();
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }
}
