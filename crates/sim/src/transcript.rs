//! Execution transcripts: the per-node / per-edge commit ledger.
//!
//! The transcript records exactly the quantities Definition 1 of the paper
//! averages: for every node the round at which it committed its own output,
//! for every edge the round at which its label was committed, and for every
//! node the round at which it *terminated* (stopped sending messages) —
//! the alternative complexity notion discussed in §2 ("Computation vs.
//! Termination Time").

/// A round counter. Round 0 is the `init` phase (a "0-round algorithm"
/// commits during `init`); messages sent in round `r` arrive in round `r+1`.
pub type Round = usize;

/// Sentinel for "never committed / never halted".
pub const UNCOMMITTED: Round = Round::MAX;

/// How much ledger a run retains beyond the outputs themselves.
///
/// The paper's averaged measures (Definition 1) need only the per-element
/// *commit* clocks, yet the full transcript also carries the termination
/// ledger and a per-round CONGEST audit. When a caller runs thousands of
/// cells and only reads completion times, that bookkeeping is pure
/// overhead — the policy lets the engine skip it. Commit clocks and
/// outputs are **always** retained: without them the run could neither be
/// verified nor measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TranscriptPolicy {
    /// Everything: commit clocks, halt clocks, and the per-round
    /// CONGEST message audit (`max_message_bits`, `messages_sent`).
    #[default]
    Full,
    /// Commit and halt clocks only; the CONGEST audit is skipped
    /// (`max_message_bits` stays empty, `messages_sent` stays 0, and the
    /// engine never calls `MessageSize::size_bits`).
    CompletionsOnly,
    /// The bare minimum for a measurable, verifiable run: outputs and
    /// commit clocks. Halt clocks stay [`UNCOMMITTED`] (termination-time
    /// metrics degrade to the worst case) and the CONGEST audit is
    /// skipped.
    None,
}

impl TranscriptPolicy {
    /// Whether the engine keeps the per-round CONGEST audit.
    pub fn records_audit(&self) -> bool {
        matches!(self, TranscriptPolicy::Full)
    }

    /// Whether the engine records per-node halt (termination) rounds.
    pub fn records_halts(&self) -> bool {
        !matches!(self, TranscriptPolicy::None)
    }

    /// Stable CLI / JSON label (`"full"`, `"completions"`, `"none"`).
    pub fn label(&self) -> &'static str {
        match self {
            TranscriptPolicy::Full => "full",
            TranscriptPolicy::CompletionsOnly => "completions",
            TranscriptPolicy::None => "none",
        }
    }

    /// Parses a CLI label; the inverse of [`TranscriptPolicy::label`].
    pub fn parse(s: &str) -> Option<TranscriptPolicy> {
        match s {
            "full" => Some(TranscriptPolicy::Full),
            "completions" | "completions-only" => Some(TranscriptPolicy::CompletionsOnly),
            "none" => Some(TranscriptPolicy::None),
            _ => None,
        }
    }
}

/// Which outputs a problem labels — determines how Definition 1 completion
/// times treat missing commitments.
///
/// * For a node-labelling problem (MIS, coloring, ruling sets) the edges
///   carry no output; an edge is complete when both endpoints are.
/// * For an edge-labelling problem (matching, orientations) the nodes carry
///   no output; a node is complete when all incident edges are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputKind {
    /// Only nodes commit outputs.
    NodeLabels,
    /// Only edges commit outputs.
    EdgeLabels,
    /// Both nodes and edges commit outputs.
    Both,
}

/// Record of one simulated execution.
///
/// Produced by the [`engine`](crate::engine); can also be assembled by
/// hand for algorithms whose complexity accounting is done structurally
/// (Theorem 6's contraction levels build transcripts directly).
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript<NO, EO> {
    /// What kind of outputs this problem commits.
    pub kind: OutputKind,
    /// Total rounds executed until every node halted.
    pub rounds: Round,
    /// Final node outputs (`None` if the node never committed one).
    pub node_output: Vec<Option<NO>>,
    /// Final edge outputs.
    pub edge_output: Vec<Option<EO>>,
    /// Round at which each node committed its own output ([`UNCOMMITTED`]
    /// if it never did — legitimate for [`OutputKind::EdgeLabels`]).
    pub node_commit_round: Vec<Round>,
    /// Round at which each edge's output was committed (earliest endpoint).
    pub edge_commit_round: Vec<Round>,
    /// Round at which each node halted (stopped participating).
    pub node_halt_round: Vec<Round>,
    /// Number of live (not yet halted) nodes *after* each executed round's
    /// halts were recorded — the engine's O(1) live-frontier counter,
    /// exported so oracles can cross-check it against a recomputation from
    /// `node_halt_round`. Recorded whenever halt rounds are (policies
    /// [`TranscriptPolicy::Full`] and [`TranscriptPolicy::CompletionsOnly`]);
    /// monotone non-increasing, and the final entry of a completed run
    /// is 0.
    pub live_after_round: Vec<usize>,
    /// Per-round maximum message size in bits (CONGEST audit); index 0 is
    /// the init phase.
    pub max_message_bits: Vec<usize>,
    /// Total number of point-to-point messages delivered.
    pub messages_sent: usize,
    /// Messages sent by each node over the whole run (CONGEST volume
    /// audit, the Rosenbaum–Suomela "volume" axis). Empty unless the run
    /// was audited ([`TranscriptPolicy::records_audit`]); when present the
    /// entries sum to [`Transcript::messages_sent`].
    pub node_messages_sent: Vec<u64>,
    /// Total bits sent by each node; empty unless audited.
    pub node_bits_sent: Vec<u64>,
    /// Messages received by each node; empty unless audited. Sums to at
    /// most `messages_sent` — messages addressed to an already-halted
    /// receiver count as sent but are never delivered.
    pub node_messages_recv: Vec<u64>,
    /// Total bits received by each node; empty unless audited.
    pub node_bits_recv: Vec<u64>,
}

impl<NO, EO> Transcript<NO, EO> {
    /// Creates an empty transcript for `n` nodes and `m` edges.
    ///
    /// Every per-node/per-edge ledger column is allocated up front at its
    /// final size, and the per-round audit vector reserves a generous
    /// starting capacity — the engine never reallocates a transcript in
    /// the steady state.
    pub fn empty(kind: OutputKind, n: usize, m: usize) -> Self {
        Transcript {
            kind,
            rounds: 0,
            node_output: (0..n).map(|_| None).collect(),
            edge_output: (0..m).map(|_| None).collect(),
            node_commit_round: vec![UNCOMMITTED; n],
            edge_commit_round: vec![UNCOMMITTED; m],
            node_halt_round: vec![UNCOMMITTED; n],
            live_after_round: Vec::with_capacity(64),
            max_message_bits: Vec::with_capacity(64),
            messages_sent: 0,
            node_messages_sent: Vec::new(),
            node_bits_sent: Vec::new(),
            node_messages_recv: Vec::new(),
            node_bits_recv: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.node_output.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edge_output.len()
    }

    /// Whether every node committed a node output.
    pub fn all_nodes_committed(&self) -> bool {
        self.node_commit_round.iter().all(|&r| r != UNCOMMITTED)
    }

    /// Whether every edge output was committed.
    pub fn all_edges_committed(&self) -> bool {
        self.edge_commit_round.iter().all(|&r| r != UNCOMMITTED)
    }

    /// Whether the transcript's committed outputs are complete for its
    /// [`OutputKind`].
    pub fn is_complete(&self) -> bool {
        match self.kind {
            OutputKind::NodeLabels => self.all_nodes_committed(),
            OutputKind::EdgeLabels => self.all_edges_committed(),
            OutputKind::Both => self.all_nodes_committed() && self.all_edges_committed(),
        }
    }

    /// Whether this run carried the CONGEST audit at all. The engine pushes
    /// one `max_message_bits` entry per executed round — and round 0 (init)
    /// always executes — so an audited transcript is never empty here, and
    /// emptiness cleanly means "the audit was skipped", not "silent run".
    pub fn audited(&self) -> bool {
        !self.max_message_bits.is_empty()
    }

    /// The maximum message size over all rounds, in bits.
    ///
    /// Returns `None` when the run was not audited
    /// ([`TranscriptPolicy::CompletionsOnly`] / [`TranscriptPolicy::None`])
    /// and `Some(0)` for an audited run that happened to be silent — the
    /// two cases an unconditional `0` used to conflate.
    pub fn peak_message_bits(&self) -> Option<usize> {
        self.audited()
            .then(|| self.max_message_bits.iter().copied().max().unwrap_or(0))
    }

    /// Stamps the audit columns of a hand-built *structural* transcript
    /// whose accounting proves no messages are exchanged: every round's
    /// peak is 0 bits and every node's volume is 0. Callers set `rounds`
    /// first. After this, [`Transcript::audited`] reports `true` and
    /// [`Transcript::peak_message_bits`] returns `Some(0)` — a silent but
    /// audited run, distinct from a run whose audit was skipped.
    pub fn record_silent_audit(&mut self) {
        let n = self.n();
        self.max_message_bits = vec![0; self.rounds + 1];
        self.messages_sent = 0;
        self.node_messages_sent = vec![0; n];
        self.node_bits_sent = vec![0; n];
        self.node_messages_recv = vec![0; n];
        self.node_bits_recv = vec![0; n];
    }

    /// The round node `v` committed its own output, or `None` if it never
    /// did. The `Option` accessors exist for independent reimplementations
    /// of the Definition 1 accounting (the `localavg_core::check` oracle):
    /// they expose the raw ledger without the [`UNCOMMITTED`] sentinel
    /// convention leaking into the caller.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn node_commit(&self, v: usize) -> Option<Round> {
        match self.node_commit_round[v] {
            UNCOMMITTED => None,
            r => Some(r),
        }
    }

    /// The round edge `e`'s output was committed, or `None` if it never
    /// was.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    pub fn edge_commit(&self, e: usize) -> Option<Round> {
        match self.edge_commit_round[e] {
            UNCOMMITTED => None,
            r => Some(r),
        }
    }

    /// The round node `v` halted, or `None` if the run never recorded a
    /// halt for it (legitimate under `TranscriptPolicy::None`).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn node_halt(&self, v: usize) -> Option<Round> {
        match self.node_halt_round[v] {
            UNCOMMITTED => None,
            r => Some(r),
        }
    }

    /// Rebuilds [`Transcript::live_after_round`] from the per-node halt
    /// ledger: entry `r` counts the nodes still live after round `r`
    /// (halt round `> r`), computed as a halt-round histogram plus a
    /// suffix sum — O(n + rounds).
    ///
    /// This is how *structural* algorithms (sinkless orientation's
    /// deterministic construction, the `*/tree-rc` layer-peeling family)
    /// hand-build transcripts that satisfy the same frontier-decay
    /// invariant the round engine's O(1) live counter records: monotone
    /// non-increasing, final entry zero. Callers set `rounds` and every
    /// `node_halt_round` first.
    ///
    /// # Panics
    ///
    /// Panics if any node's halt round exceeds `self.rounds` (such a halt
    /// could never have been observed by a `rounds`-round run).
    pub fn rebuild_live_ledger(&mut self) {
        let rounds = self.rounds;
        let mut halts_at = vec![0usize; rounds + 1];
        for &h in &self.node_halt_round {
            assert!(
                h <= rounds,
                "node halt round {h} exceeds the transcript's {rounds} rounds"
            );
            halts_at[h] += 1;
        }
        self.live_after_round = vec![0; rounds + 1];
        let mut live = 0;
        for r in (0..rounds).rev() {
            live += halts_at[r + 1];
            self.live_after_round[r] = live;
        }
    }
}

impl<NO, EO> Transcript<NO, EO> {
    /// Erases the output types, keeping every timing/audit field.
    ///
    /// The erased transcript carries `()` placeholders wherever an output
    /// was committed, so completeness checks and all of Definition 1's
    /// completion-time accounting keep working. This is what lets
    /// heterogeneous algorithm families share one result type
    /// (`localavg_core::algo::AlgoRun`).
    pub fn erased(&self) -> Transcript<(), ()> {
        Transcript {
            kind: self.kind,
            rounds: self.rounds,
            node_output: self
                .node_output
                .iter()
                .map(|o| o.as_ref().map(|_| ()))
                .collect(),
            edge_output: self
                .edge_output
                .iter()
                .map(|o| o.as_ref().map(|_| ()))
                .collect(),
            node_commit_round: self.node_commit_round.clone(),
            edge_commit_round: self.edge_commit_round.clone(),
            node_halt_round: self.node_halt_round.clone(),
            live_after_round: self.live_after_round.clone(),
            max_message_bits: self.max_message_bits.clone(),
            messages_sent: self.messages_sent,
            node_messages_sent: self.node_messages_sent.clone(),
            node_bits_sent: self.node_bits_sent.clone(),
            node_messages_recv: self.node_messages_recv.clone(),
            node_bits_recv: self.node_bits_recv.clone(),
        }
    }

    /// Consuming variant of [`Transcript::erased`]: the ledger columns
    /// (commit/halt clocks, audit) are *moved*, not cloned — only the two
    /// output vectors are re-mapped. This is the conversion the unified
    /// `AlgoRun` result type uses, so erasing a transcript costs two
    /// allocations instead of six.
    pub fn into_erased(self) -> Transcript<(), ()> {
        Transcript {
            kind: self.kind,
            rounds: self.rounds,
            node_output: self
                .node_output
                .iter()
                .map(|o| o.as_ref().map(|_| ()))
                .collect(),
            edge_output: self
                .edge_output
                .iter()
                .map(|o| o.as_ref().map(|_| ()))
                .collect(),
            node_commit_round: self.node_commit_round,
            edge_commit_round: self.edge_commit_round,
            node_halt_round: self.node_halt_round,
            live_after_round: self.live_after_round,
            max_message_bits: self.max_message_bits,
            messages_sent: self.messages_sent,
            node_messages_sent: self.node_messages_sent,
            node_bits_sent: self.node_bits_sent,
            node_messages_recv: self.node_messages_recv,
            node_bits_recv: self.node_bits_recv,
        }
    }
}

impl<NO: Clone, EO: Clone> Transcript<NO, EO> {
    /// Extracts the node outputs, panicking on any missing one.
    ///
    /// # Panics
    ///
    /// Panics if some node never committed — call only on complete
    /// node-labelling transcripts.
    pub fn node_labels(&self) -> Vec<NO> {
        self.node_output
            .iter()
            .enumerate()
            .map(|(v, o)| {
                o.clone()
                    .unwrap_or_else(|| panic!("node {v} never committed"))
            })
            .collect()
    }

    /// Extracts the edge outputs, panicking on any missing one.
    ///
    /// # Panics
    ///
    /// Panics if some edge never committed.
    pub fn edge_labels(&self) -> Vec<EO> {
        self.edge_output
            .iter()
            .enumerate()
            .map(|(e, o)| {
                o.clone()
                    .unwrap_or_else(|| panic!("edge {e} never committed"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transcript() {
        let t: Transcript<bool, ()> = Transcript::empty(OutputKind::NodeLabels, 3, 2);
        assert_eq!(t.n(), 3);
        assert_eq!(t.m(), 2);
        assert!(!t.all_nodes_committed());
        assert!(!t.is_complete());
        assert!(!t.audited());
        assert_eq!(t.peak_message_bits(), None);
    }

    #[test]
    fn silent_audit_is_distinct_from_no_audit() {
        let mut t: Transcript<bool, ()> = Transcript::empty(OutputKind::NodeLabels, 3, 2);
        t.rounds = 2;
        t.record_silent_audit();
        assert!(t.audited());
        assert_eq!(t.peak_message_bits(), Some(0));
        assert_eq!(t.max_message_bits, vec![0, 0, 0]);
        assert_eq!(t.node_messages_sent, vec![0, 0, 0]);
        assert_eq!(t.node_bits_recv, vec![0, 0, 0]);
        assert_eq!(t.messages_sent, 0);
    }

    #[test]
    fn completeness_by_kind() {
        let mut t: Transcript<bool, bool> = Transcript::empty(OutputKind::EdgeLabels, 2, 1);
        t.edge_commit_round[0] = 3;
        t.edge_output[0] = Some(true);
        assert!(t.is_complete());
        t.kind = OutputKind::Both;
        assert!(!t.is_complete());
        t.node_commit_round = vec![0, 1];
        assert!(t.is_complete());
    }

    #[test]
    fn label_extraction() {
        let mut t: Transcript<u8, u8> = Transcript::empty(OutputKind::Both, 2, 1);
        t.node_output = vec![Some(1), Some(2)];
        t.edge_output = vec![Some(9)];
        assert_eq!(t.node_labels(), vec![1, 2]);
        assert_eq!(t.edge_labels(), vec![9]);
    }

    #[test]
    #[should_panic]
    fn missing_label_panics() {
        let t: Transcript<u8, ()> = Transcript::empty(OutputKind::NodeLabels, 1, 0);
        let _ = t.node_labels();
    }

    #[test]
    fn policy_gates_and_labels() {
        assert!(TranscriptPolicy::Full.records_audit());
        assert!(TranscriptPolicy::Full.records_halts());
        assert!(!TranscriptPolicy::CompletionsOnly.records_audit());
        assert!(TranscriptPolicy::CompletionsOnly.records_halts());
        assert!(!TranscriptPolicy::None.records_audit());
        assert!(!TranscriptPolicy::None.records_halts());
        assert_eq!(TranscriptPolicy::default(), TranscriptPolicy::Full);
        for p in [
            TranscriptPolicy::Full,
            TranscriptPolicy::CompletionsOnly,
            TranscriptPolicy::None,
        ] {
            assert_eq!(TranscriptPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(
            TranscriptPolicy::parse("completions-only"),
            Some(TranscriptPolicy::CompletionsOnly)
        );
        assert_eq!(TranscriptPolicy::parse("fast"), None);
    }

    #[test]
    fn option_accessors_mirror_the_sentinel_columns() {
        let mut t: Transcript<u8, u8> = Transcript::empty(OutputKind::Both, 2, 1);
        t.node_commit_round[0] = 3;
        t.edge_commit_round[0] = 4;
        t.node_halt_round[1] = 5;
        assert_eq!(t.node_commit(0), Some(3));
        assert_eq!(t.node_commit(1), None);
        assert_eq!(t.edge_commit(0), Some(4));
        assert_eq!(t.node_halt(0), None);
        assert_eq!(t.node_halt(1), Some(5));
    }

    #[test]
    fn into_erased_preserves_the_ledger() {
        let mut t: Transcript<u8, u8> = Transcript::empty(OutputKind::Both, 2, 1);
        t.node_commit_round = vec![1, 2];
        t.node_output = vec![Some(7), None];
        t.edge_commit_round = vec![3];
        t.edge_output = vec![Some(9)];
        t.node_halt_round = vec![4, 5];
        t.live_after_round = vec![2, 1, 0];
        t.max_message_bits = vec![8, 16];
        t.messages_sent = 6;
        t.node_messages_sent = vec![4, 2];
        t.node_bits_sent = vec![24, 16];
        t.node_messages_recv = vec![2, 4];
        t.node_bits_recv = vec![16, 24];
        t.rounds = 5;
        let by_ref = t.erased();
        let by_move = t.into_erased();
        assert_eq!(by_move.node_commit_round, by_ref.node_commit_round);
        assert_eq!(by_move.edge_commit_round, by_ref.edge_commit_round);
        assert_eq!(by_move.node_halt_round, by_ref.node_halt_round);
        assert_eq!(by_move.live_after_round, by_ref.live_after_round);
        assert_eq!(by_move.live_after_round, vec![2, 1, 0]);
        assert_eq!(by_move.max_message_bits, by_ref.max_message_bits);
        assert_eq!(by_move.messages_sent, by_ref.messages_sent);
        assert_eq!(by_move.node_messages_sent, by_ref.node_messages_sent);
        assert_eq!(by_move.node_bits_sent, vec![24, 16]);
        assert_eq!(by_move.node_messages_recv, by_ref.node_messages_recv);
        assert_eq!(by_move.node_bits_recv, vec![16, 24]);
        assert_eq!(by_move.node_output, vec![Some(()), None]);
        assert_eq!(by_move.edge_output, vec![Some(())]);
    }
}
