//! Reusable engine arenas, keyed to a graph's CSR shape.
//!
//! Creating a fresh set of run arenas for an n = 10⁵ instance means tens
//! of megabytes of allocation *per run* — outbox slots per directed arc,
//! the inbox arena, per-node process/RNG/flag columns. Drivers that run
//! the same algorithm on the same instance thousands of times (the sweep
//! engine's cells, `exp bench-engine`'s repetitions) pay that bill every
//! time for no benefit.
//!
//! A [`Workspace`] owns those arenas across runs. The engine's per-run
//! state is typed by the algorithm's `Process` implementation (message
//! and output types differ per algorithm), so the workspace stores one
//! type-erased slot per process type and the engine downcasts on entry
//! (`engine::run_spec_in`). Arenas are only valid for one CSR shape —
//! `(n, m, Σdeg)` — and the workspace flushes itself whenever a run
//! arrives for a differently-shaped graph.
//!
//! Reuse is observably free: every run resets the arenas to exactly the
//! state a fresh allocation would have, so transcripts are bit-identical
//! with and without a workspace (the sweep golden files pin this — the
//! sweep engine always runs through per-worker workspaces).

use crate::pool::WorkerPool;
use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Reusable per-run engine arenas (see the module docs).
///
/// Construction is free (no allocation until the first run), so the
/// ergonomic default for one-off runs is a fresh `Workspace::new()`; keep
/// one alive across runs only when the run count makes reuse pay.
///
/// Besides the arenas, a workspace owns the engine's persistent
/// [`WorkerPool`]: the first parallel run spawns the worker threads and
/// later parallel runs reuse them, so a long-lived workspace (the `exp
/// serve` pool workers, `exp bench-engine` repetitions) pays thread-spawn
/// cost once rather than once per run. The pool is independent of the
/// CSR shape and survives both shape changes and [`Workspace::clear`].
#[derive(Debug, Default)]
pub struct Workspace {
    /// CSR shape `(n, m, degree_sum)` the stored arenas are sized for.
    pub(crate) shape: Option<(usize, usize, usize)>,
    /// One type-erased `RunState<P>` per process type seen on this shape.
    pub(crate) states: HashMap<TypeId, Box<dyn Any + Send>>,
    /// Resident worker threads for parallel runs (spawned lazily by the
    /// first parallel run, grown when a run asks for more threads).
    pub(crate) pool: Option<WorkerPool>,
    /// Runs that found a matching arena to reuse.
    pub(crate) reuses: usize,
    /// Total runs served.
    pub(crate) runs: usize,
}

impl Workspace {
    /// Creates an empty workspace (allocates nothing until the first run).
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Drops every stored arena (e.g. before moving to a much smaller
    /// instance, to release the high-water memory). The worker pool is
    /// kept: its threads hold no per-shape memory and respawning them is
    /// exactly the cost the pool exists to avoid.
    pub fn clear(&mut self) {
        self.states.clear();
        self.shape = None;
    }

    /// Number of resident pool worker threads (0 until the first parallel
    /// run engages the pool; the driving thread is not counted).
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::workers)
    }

    /// Number of runs served by this workspace.
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// Number of runs that reused an already-allocated arena (the rest
    /// allocated fresh — first contact with a process type or a shape
    /// change).
    pub fn reuse_count(&self) -> usize {
        self.reuses
    }

    /// Number of distinct process types currently holding arenas.
    pub fn arena_count(&self) -> usize {
        self.states.len()
    }

    /// Point-in-time counter snapshot. Long-running drivers that own one
    /// workspace per worker (the `exp serve` pool) take deltas of this
    /// around each run to aggregate reuse accounting across the fleet.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            runs: self.runs,
            reuses: self.reuses,
            arenas: self.states.len(),
        }
    }
}

/// A snapshot of a [`Workspace`]'s counters (see [`Workspace::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Runs served so far.
    pub runs: usize,
    /// Runs that reused an already-allocated arena.
    pub reuses: usize,
    /// Distinct process types currently holding arenas.
    pub arenas: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_workspace_is_empty() {
        let ws = Workspace::new();
        assert_eq!(ws.run_count(), 0);
        assert_eq!(ws.reuse_count(), 0);
        assert_eq!(ws.arena_count(), 0);
        assert_eq!(ws.shape, None);
        assert_eq!(ws.pool_workers(), 0);
        assert_eq!(ws.stats(), WorkspaceStats::default());
    }

    #[test]
    fn stats_snapshot_tracks_counters() {
        let mut ws = Workspace::new();
        ws.runs = 5;
        ws.reuses = 3;
        ws.states.insert(TypeId::of::<u32>(), Box::new(1u32));
        let s = ws.stats();
        assert_eq!(s.runs, 5);
        assert_eq!(s.reuses, 3);
        assert_eq!(s.arenas, 1);
    }

    #[test]
    fn clear_drops_arenas() {
        let mut ws = Workspace::new();
        ws.states.insert(TypeId::of::<u32>(), Box::new(1u32));
        ws.shape = Some((1, 0, 0));
        ws.clear();
        assert_eq!(ws.arena_count(), 0);
        assert_eq!(ws.shape, None);
    }
}
