//! Synchronous LOCAL/CONGEST message-passing simulator.
//!
//! This crate implements the distributed model of the paper's §2:
//!
//! * Time is divided into synchronous **rounds**; in every round each node
//!   may send an arbitrary message to each neighbor and receives the
//!   messages sent to it in the previous round ([`engine`]).
//! * Every node holds a unique id, knows `n` and `Δ`, and (configurably)
//!   learns its neighbors' ids and degrees — see [`process::Knowledge`].
//! * Nodes **commit** to outputs: a node commits its own label
//!   ([`process::Ctx::commit_node`]) and/or labels of incident edges
//!   ([`process::Ctx::commit_edge`]). The engine keeps a *ledger* of commit
//!   rounds — exactly the `T_v^G(A)` / `T_e^G(A)` quantities that
//!   Definition 1 averages.
//! * Messages carry a [`message::MessageSize`] estimate so CONGEST
//!   algorithms can be audited for O(log n)-bit messages.
//!
//! Randomness follows footnote 1 of the paper: each node's random bits are
//! a pure function of `(master seed, node id)` (via
//! [`localavg_graph::rng::Rng::fork`]), so transcripts are identical under
//! the sequential and the parallel executor.
//!
//! # Example: a 1-round "am I a local maximum?" algorithm
//!
//! ```
//! use localavg_graph::gen;
//! use localavg_sim::prelude::*;
//!
//! struct LocalMax { best: u64 }
//!
//! impl Process for LocalMax {
//!     type Message = u64;
//!     type NodeOutput = bool;
//!     type EdgeOutput = ();
//!     type Params = ();
//!
//!     const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
//!
//!     fn init(_p: &(), ctx: &mut Ctx<'_, Self>) -> Self {
//!         ctx.broadcast(ctx.id() as u64);
//!         LocalMax { best: ctx.id() as u64 }
//!     }
//!
//!     fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
//!         for env in inbox {
//!             self.best = self.best.max(env.msg);
//!         }
//!         ctx.commit_node(self.best == ctx.id() as u64);
//!         ctx.halt();
//!     }
//! }
//!
//! let g = gen::path(5);
//! let t = run_sequential::<LocalMax>(&g, &(), &SimConfig::new(1));
//! assert_eq!(t.node_output[4], Some(true));  // node 4 is a local max
//! assert_eq!(t.node_output[0], Some(false));
//! ```

// Unsafe is denied crate-wide and allowed back in only where the
// parallel executor needs it: the worker pool's lifetime-erased job
// pointer (`pool`) and the engine's per-chunk round passes, each with
// a written aliasing contract.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod engine;
pub mod message;
pub mod pool;
pub mod process;
pub mod transcript;
pub mod workspace;

/// Convenient glob import for algorithm implementations.
pub mod prelude {
    pub use crate::engine::{run_parallel, run_sequential, run_spec_in, Exec, RunSpec, SimConfig};
    pub use crate::message::{Envelope, MessageSize};
    pub use crate::process::{Ctx, Knowledge, Process};
    pub use crate::transcript::{OutputKind, Round, Transcript, TranscriptPolicy, UNCOMMITTED};
    pub use crate::workspace::Workspace;
    pub use localavg_graph::rng::Rng;
    pub use localavg_graph::{EdgeId, Graph, NodeId};
}
