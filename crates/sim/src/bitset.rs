//! A dense fixed-length bitset.
//!
//! The round engine keeps its per-node halted/committed state columnar:
//! one bit per node, packed 64 to a word. That makes "skip a fully
//! halted block of 64 nodes" a single word compare in the sequential
//! activation loop — the dominant win in the long low-activity tail of
//! algorithms whose nodes finish at very different times (exactly the
//! runs Definition 1's averages care about).

/// A fixed-length bitset over indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates a bitset of `len` zero bits.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of range for Bitset of {}",
            self.len
        );
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to 1.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of range for Bitset of {}",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// The `w`-th 64-bit word (bit `i` lives in word `i / 64`).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Number of words.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zeroes every bit and resizes to `len`, reusing the word buffer —
    /// the reset path of the engine's reusable arenas (`Workspace`).
    pub fn clear_and_resize(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Calls `f` for every **zero** bit in `lo..hi`, in ascending order.
    ///
    /// This is the engine's live-frontier sweep: with one bit per node in
    /// the halted bitset, a fully-halted block of 64 nodes costs a single
    /// word compare, so a chunk pass over a mostly-dead region is O(words)
    /// rather than O(nodes). Boundary words are masked, so chunk limits
    /// need not be word-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `hi > len` (debug builds).
    #[inline]
    pub fn for_each_zero_in(&self, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
        debug_assert!(hi <= self.len, "range {lo}..{hi} out of {}", self.len);
        if lo >= hi {
            return;
        }
        let (first, last) = (lo / 64, (hi - 1) / 64);
        for w in first..=last {
            // Invert: zeros (live nodes) become ones we can count through.
            let mut word = !self.words[w];
            if w == first {
                word &= u64::MAX << (lo % 64);
            }
            if w == last {
                let tail = hi - w * 64;
                if tail < 64 {
                    word &= (1u64 << tail) - 1;
                }
            }
            if word == 0 {
                continue; // 64 halted nodes skipped in one compare
            }
            let base = w * 64;
            while word != 0 {
                f(base + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitset::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.word_count(), 3);
        assert_eq!(b.word(0), 1 | 1 << 63);
        assert_eq!(b.word(1), 1);
    }

    #[test]
    fn empty_bitset() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.word_count(), 0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let b = Bitset::new(10);
        let _ = b.get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut b = Bitset::new(64);
        b.set(64);
    }

    #[test]
    fn zero_sweep_respects_range_and_order() {
        let mut b = Bitset::new(200);
        for i in [0, 5, 63, 64, 128, 199] {
            b.set(i);
        }
        let collect = |lo, hi| {
            let mut out = Vec::new();
            b.for_each_zero_in(lo, hi, |i| out.push(i));
            out
        };
        // Full range: every index not set, ascending.
        let all = collect(0, 200);
        assert_eq!(all.len(), 200 - 6);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert!(!all.contains(&63) && !all.contains(&128));
        assert!(all.contains(&1) && all.contains(&198));
        // Unaligned sub-range, entirely inside one word.
        assert_eq!(collect(3, 8), vec![3, 4, 6, 7]);
        // Range crossing a word boundary.
        assert_eq!(collect(62, 66), vec![62, 65]);
        // Empty and inverted ranges are no-ops.
        assert_eq!(collect(10, 10), Vec::<usize>::new());
        assert_eq!(collect(200, 200), Vec::<usize>::new());
    }

    #[test]
    fn zero_sweep_skips_saturated_words() {
        let mut b = Bitset::new(192);
        for i in 64..128 {
            b.set(i);
        }
        let mut out = Vec::new();
        b.for_each_zero_in(60, 132, |i| out.push(i));
        assert_eq!(out, vec![60, 61, 62, 63, 128, 129, 130, 131]);
    }

    #[test]
    fn clear_and_resize_resets_all_bits() {
        let mut b = Bitset::new(100);
        b.set(3);
        b.set(99);
        b.clear_and_resize(100);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 100);
        b.set(64);
        b.clear_and_resize(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.word_count(), 1);
        assert_eq!(b.count_ones(), 0);
        b.clear_and_resize(130);
        assert_eq!(b.word_count(), 3);
        assert_eq!(b.count_ones(), 0);
    }
}
