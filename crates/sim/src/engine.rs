//! The synchronous round engine (sequential and parallel executors).
//!
//! Both executors produce *bit-identical* [`Transcript`]s: per-node
//! randomness is derived from `(seed, node id)` alone, inboxes are ordered
//! by sender id, and commit events are applied in node order. The parallel
//! executor exists to exercise realistic concurrent message passing (and
//! to speed up big lower-bound instances); the determinism property is
//! checked by tests.

use crate::message::{Envelope, MessageSize};
use crate::process::{Ctx, Event, Knowledge, Process};
use crate::transcript::{Round, Transcript, UNCOMMITTED};
use localavg_graph::rng::Rng;
use localavg_graph::{Graph, NodeId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; node `v` uses the substream `seed.fork(v)`.
    pub seed: u64,
    /// Hard cap on rounds; exceeding it panics (indicates a non-terminating
    /// algorithm — every algorithm in this workspace halts explicitly).
    pub max_rounds: usize,
    /// Initial knowledge configuration.
    pub knowledge: Knowledge,
    /// Number of worker threads for [`run_parallel`] (ignored by
    /// [`run_sequential`]); 0 means "number of available cores".
    pub threads: usize,
}

impl SimConfig {
    /// Creates a configuration with the given seed and defaults: a
    /// 1,000,000-round cap, full neighbor knowledge, automatic threads.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            max_rounds: 1_000_000,
            knowledge: Knowledge::default(),
            threads: 0,
        }
    }

    /// Sets the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the knowledge configuration.
    #[must_use]
    pub fn with_knowledge(mut self, knowledge: Knowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Sets the worker-thread count for the parallel executor.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Mutable per-run state shared by both executors.
struct RunState<P: Process> {
    processes: Vec<Option<P>>,
    rngs: Vec<Rng>,
    halted: Vec<bool>,
    /// outboxes[v] = (port, message) pairs produced this round.
    outboxes: Vec<Vec<(usize, P::Message)>>,
    events: Vec<Vec<Event<P::NodeOutput, P::EdgeOutput>>>,
    inbox: Vec<Vec<Envelope<P::Message>>>,
    transcript: Transcript<P::NodeOutput, P::EdgeOutput>,
    /// For each edge `(u, v)` with `u < v`: (port at u, port at v).
    edge_ports: Vec<(usize, usize)>,
}

impl<P: Process> RunState<P> {
    fn new(g: &Graph, seed: u64) -> Self {
        let master = Rng::seed_from(seed);
        let mut edge_ports = vec![(usize::MAX, usize::MAX); g.m()];
        for v in g.nodes() {
            for (port, &(_, e)) in g.neighbors(v).iter().enumerate() {
                let (a, _) = g.endpoints(e);
                if v == a {
                    edge_ports[e].0 = port;
                } else {
                    edge_ports[e].1 = port;
                }
            }
        }
        RunState {
            processes: (0..g.n()).map(|_| None).collect(),
            rngs: (0..g.n()).map(|v| master.fork(v as u64)).collect(),
            halted: vec![false; g.n()],
            outboxes: vec![Vec::new(); g.n()],
            events: vec![Vec::new(); g.n()],
            inbox: vec![Vec::new(); g.n()],
            transcript: Transcript::empty(P::OUTPUT_KIND, g.n(), g.m()),
            edge_ports,
        }
    }

    /// Applies commit events (in node order — deterministic) for `round`.
    fn apply_events(&mut self, g: &Graph, round: Round) {
        for v in g.nodes() {
            for event in self.events[v].drain(..) {
                match event {
                    Event::Node(out) => {
                        assert!(
                            self.transcript.node_commit_round[v] == UNCOMMITTED,
                            "node {v} committed twice (round {round}); outputs are final"
                        );
                        self.transcript.node_commit_round[v] = round;
                        self.transcript.node_output[v] = Some(out);
                    }
                    Event::Edge(e, out) => match &self.transcript.edge_output[e] {
                        None => {
                            self.transcript.edge_commit_round[e] = round;
                            self.transcript.edge_output[e] = Some(out);
                        }
                        Some(prev) => {
                            assert!(
                                *prev == out,
                                "edge {e} committed with conflicting labels \
                                     ({prev:?} vs {out:?}) — algorithm bug"
                            );
                        }
                    },
                }
            }
        }
    }

    /// Routes this round's outboxes into next round's inboxes; returns the
    /// maximum message size seen.
    fn route_messages(&mut self, g: &Graph) -> usize {
        for v in g.nodes() {
            self.inbox[v].clear();
        }
        let mut max_bits = 0usize;
        // Iterate senders in id order so each inbox ends up sorted by src.
        for src in g.nodes() {
            let outbox = std::mem::take(&mut self.outboxes[src]);
            for (port, msg) in outbox {
                max_bits = max_bits.max(msg.size_bits());
                self.transcript.messages_sent += 1;
                let (dst, e) = g.neighbors(src)[port];
                if self.halted[dst] {
                    continue; // terminated nodes no longer receive
                }
                let (pu, pv) = self.edge_ports[e];
                let (a, _) = g.endpoints(e);
                let dst_port = if dst == a { pu } else { pv };
                self.inbox[dst].push(Envelope {
                    src,
                    port: dst_port,
                    msg,
                });
            }
        }
        max_bits
    }

    fn record_halts(&mut self, g: &Graph, round: Round) {
        for v in g.nodes() {
            if self.halted[v] && self.transcript.node_halt_round[v] == UNCOMMITTED {
                self.transcript.node_halt_round[v] = round;
            }
        }
    }

    fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }
}

/// Activates one node for one round (or init when `round == 0`).
#[allow(clippy::too_many_arguments)]
fn activate<P: Process>(
    g: &Graph,
    cfg: &SimConfig,
    params: &P::Params,
    v: NodeId,
    round: Round,
    max_degree: usize,
    proc_slot: &mut Option<P>,
    rng: &mut Rng,
    halted: &mut bool,
    outbox: &mut Vec<(usize, P::Message)>,
    events: &mut Vec<Event<P::NodeOutput, P::EdgeOutput>>,
    inbox: &[Envelope<P::Message>],
) {
    let mut ctx = Ctx {
        id: v,
        round,
        graph: g,
        knowledge: cfg.knowledge,
        max_degree,
        rng,
        outbox,
        events,
        halted,
    };
    if round == 0 {
        *proc_slot = Some(P::init(params, &mut ctx));
    } else {
        proc_slot
            .as_mut()
            .expect("process exists after init")
            .round(&mut ctx, inbox);
    }
}

/// Runs the algorithm to completion on the sequential executor.
///
/// # Panics
///
/// Panics if the algorithm exceeds `cfg.max_rounds` without halting every
/// node, if a node commits its own output twice, or if the two endpoints
/// of an edge commit conflicting labels.
pub fn run_sequential<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    run_inner::<P>(g, params, cfg, 1)
}

/// Runs the algorithm on the crossbeam-threaded executor.
///
/// Produces a transcript bit-identical to [`run_sequential`]; see the
/// module docs for why.
///
/// # Panics
///
/// Same conditions as [`run_sequential`].
pub fn run_parallel<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        cfg.threads
    };
    run_inner::<P>(g, params, cfg, threads.max(1))
}

fn run_inner<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
    threads: usize,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    let mut state: RunState<P> = RunState::new(g, cfg.seed);
    let max_degree = g.max_degree();

    let mut round: Round = 0;
    loop {
        step_all::<P>(g, cfg, params, round, max_degree, &mut state, threads);
        state.apply_events(g, round);
        state.record_halts(g, round);
        let max_bits = state.route_messages(g);
        state.transcript.max_message_bits.push(max_bits);
        if state.all_halted() {
            break;
        }
        round += 1;
        assert!(
            round <= cfg.max_rounds,
            "algorithm exceeded max_rounds={} without halting",
            cfg.max_rounds
        );
    }
    state.transcript.rounds = round;
    state.transcript
}

/// Runs one round's activations across all non-halted nodes.
fn step_all<P: Process>(
    g: &Graph,
    cfg: &SimConfig,
    params: &P::Params,
    round: Round,
    max_degree: usize,
    state: &mut RunState<P>,
    threads: usize,
) {
    let n = g.n();
    if n == 0 {
        return;
    }
    if threads <= 1 || n < 256 {
        for v in 0..n {
            if round > 0 && state.halted[v] {
                continue;
            }
            activate::<P>(
                g,
                cfg,
                params,
                v,
                round,
                max_degree,
                &mut state.processes[v],
                &mut state.rngs[v],
                &mut state.halted[v],
                &mut state.outboxes[v],
                &mut state.events[v],
                &state.inbox[v],
            );
        }
        return;
    }

    // Parallel path: contiguous chunks preserve node order inside each
    // per-node buffer; cross-node determinism comes from per-node buffers.
    let chunk = n.div_ceil(threads);
    let inbox = &state.inbox;
    let procs = state.processes.chunks_mut(chunk);
    let rngs = state.rngs.chunks_mut(chunk);
    let halts = state.halted.chunks_mut(chunk);
    let outs = state.outboxes.chunks_mut(chunk);
    let evs = state.events.chunks_mut(chunk);
    std::thread::scope(|scope| {
        for (ci, ((((p, r), h), o), e)) in procs.zip(rngs).zip(halts).zip(outs).zip(evs).enumerate()
        {
            let base = ci * chunk;
            scope.spawn(move || {
                for i in 0..p.len() {
                    let v = base + i;
                    if round > 0 && h[i] {
                        continue;
                    }
                    activate::<P>(
                        g, cfg, params, v, round, max_degree, &mut p[i], &mut r[i], &mut h[i],
                        &mut o[i], &mut e[i], &inbox[v],
                    );
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use localavg_graph::gen;

    /// Every node floods the maximum id it has seen for `radius` rounds,
    /// then commits it. Classic LOCAL warm-up; lets us test delivery,
    /// rounds, ports, and both executors.
    struct MaxFlood {
        best: u64,
        radius: usize,
    }

    impl Process for MaxFlood {
        type Message = u64;
        type NodeOutput = u64;
        type EdgeOutput = ();
        type Params = usize; // radius

        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(radius: &usize, ctx: &mut Ctx<'_, Self>) -> Self {
            ctx.broadcast(ctx.id() as u64);
            MaxFlood {
                best: ctx.id() as u64,
                radius: *radius,
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.best = self.best.max(env.msg);
            }
            if ctx.round() < self.radius {
                ctx.broadcast(self.best);
            } else {
                ctx.commit_node(self.best);
                ctx.halt();
            }
        }
    }

    const RADIUS: usize = 3;

    #[test]
    fn flood_reaches_radius() {
        let g = gen::path(8);
        let cfg = SimConfig::new(1);
        let t = run_sequential::<MaxFlood>(&g, &RADIUS, &cfg);
        // After 3 rounds of flooding, node 0 has seen ids up to distance 3.
        assert_eq!(t.node_output[0], Some(3));
        assert_eq!(t.node_output[4], Some(7));
        assert_eq!(t.rounds, 3);
        assert!(t.all_nodes_committed());
        assert!(t.is_complete());
        // Everyone committed at round 3 and halted at round 3.
        assert!(t.node_commit_round.iter().all(|&r| r == 3));
        assert!(t.node_halt_round.iter().all(|&r| r == 3));
    }

    #[test]
    fn congest_accounting() {
        let g = gen::cycle(6);
        let t = run_sequential::<MaxFlood>(&g, &RADIUS, &SimConfig::new(2));
        assert_eq!(t.peak_message_bits(), 64);
        // 6 nodes broadcast to 2 neighbors for rounds 0..=2 (round 3 commits).
        assert_eq!(t.messages_sent, 6 * 2 * 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::grid(8, 9);
        let cfg = SimConfig::new(7).with_threads(4);
        let a = run_sequential::<MaxFlood>(&g, &RADIUS, &cfg);
        let b = run_parallel::<MaxFlood>(&g, &RADIUS, &cfg);
        assert_eq!(a.node_output, b.node_output);
        assert_eq!(a.node_commit_round, b.node_commit_round);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    /// A randomized process: commits a coin flip at round 0. Used to verify
    /// per-node randomness is a function of (seed, id) only.
    struct CoinFlip;

    impl Process for CoinFlip {
        type Message = ();
        type NodeOutput = bool;
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            let flip = ctx.rng().chance(0.5);
            ctx.commit_node(flip);
            ctx.halt();
            CoinFlip
        }

        fn round(&mut self, _ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<()>]) {
            unreachable!("halted at init");
        }
    }

    #[test]
    fn randomness_is_seed_deterministic() {
        let g = gen::cycle(32);
        let a = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(5));
        let b = run_parallel::<CoinFlip>(&g, &(), &SimConfig::new(5).with_threads(3));
        let c = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(6));
        assert_eq!(a.node_output, b.node_output);
        assert_ne!(a.node_output, c.node_output);
        assert_eq!(a.rounds, 0, "0-round algorithm");
    }

    /// Edge-labelling process: each edge is committed by its lower-id
    /// endpoint with label = sum of endpoint ids; the higher endpoint
    /// commits the same label one round later (consistency check).
    struct EdgeLabel;

    #[derive(Debug, Clone, PartialEq)]
    struct NoMsg;
    impl MessageSize for NoMsg {
        fn size_bits(&self) -> usize {
            0
        }
    }

    impl Process for EdgeLabel {
        type Message = NoMsg;
        type NodeOutput = ();
        type EdgeOutput = u64;
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            for port in ctx.ports() {
                let u = ctx.neighbor_id(port);
                if ctx.id() < u {
                    let label = (ctx.id() + u) as u64;
                    ctx.commit_edge(port, label);
                }
            }
            EdgeLabel
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<NoMsg>]) {
            for port in ctx.ports() {
                let u = ctx.neighbor_id(port);
                if ctx.id() > u {
                    let label = (ctx.id() + u) as u64;
                    ctx.commit_edge(port, label);
                }
            }
            ctx.halt();
        }
    }

    #[test]
    fn edge_commits_record_earliest_round_and_agree() {
        let g = gen::path(4);
        let t = run_sequential::<EdgeLabel>(&g, &(), &SimConfig::new(1));
        assert!(t.all_edges_committed());
        // Lower endpoint committed at round 0; duplicate commit at round 1
        // must not move the recorded round.
        assert!(t.edge_commit_round.iter().all(|&r| r == 0));
        let labels = t.edge_labels();
        for (e, u, v) in g.edges() {
            assert_eq!(labels[e], (u + v) as u64);
        }
        assert_eq!(t.kind, OutputKind::EdgeLabels);
    }

    /// Conflicting edge labels must panic.
    struct BadEdgeLabel;

    impl Process for BadEdgeLabel {
        type Message = NoMsg;
        type NodeOutput = ();
        type EdgeOutput = u64;
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            for port in ctx.ports() {
                ctx.commit_edge(port, ctx.id() as u64); // endpoints disagree
            }
            ctx.halt();
            BadEdgeLabel
        }

        fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<NoMsg>]) {}
    }

    #[test]
    #[should_panic(expected = "conflicting labels")]
    fn conflicting_edge_commit_panics() {
        let g = gen::path(2);
        let _ = run_sequential::<BadEdgeLabel>(&g, &(), &SimConfig::new(1));
    }

    /// A process that never halts must trip the round cap.
    struct Forever;
    impl Process for Forever {
        type Message = ();
        type NodeOutput = ();
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
        fn init(_: &(), _: &mut Ctx<'_, Self>) -> Self {
            Forever
        }
        fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {}
    }

    #[test]
    #[should_panic(expected = "max_rounds")]
    fn round_cap_panics() {
        let g = gen::path(3);
        let cfg = SimConfig::new(1).with_max_rounds(10);
        let _ = run_sequential::<Forever>(&g, &(), &cfg);
    }

    #[test]
    fn knowledge_gating() {
        struct NosyProcess;
        impl Process for NosyProcess {
            type Message = ();
            type NodeOutput = ();
            type EdgeOutput = ();
            type Params = ();
            const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
            fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
                let _ = ctx.neighbor_id(0); // should panic without knowledge
                NosyProcess
            }
            fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {}
        }
        let g = gen::path(2);
        let cfg = SimConfig::new(1).with_knowledge(Knowledge {
            neighbor_ids: false,
            neighbor_degrees: false,
        });
        let result = std::panic::catch_unwind(|| {
            let _ = run_sequential::<NosyProcess>(&g, &(), &cfg);
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_graph_trivial_run() {
        let g = Graph::empty(0);
        let t = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(1));
        assert_eq!(t.rounds, 0);
        assert!(t.is_complete());
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::new(9)
            .with_max_rounds(50)
            .with_threads(2)
            .with_knowledge(Knowledge::default());
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_rounds, 50);
        assert_eq!(cfg.threads, 2);
    }
}
