//! The synchronous round engine (sequential and parallel executors).
//!
//! Both executors produce *bit-identical* [`Transcript`]s: per-node
//! randomness is derived from `(seed, node id)` alone, inboxes are ordered
//! by sender id, and commit events are applied in node order. The parallel
//! executor exists to exercise realistic concurrent message passing (and
//! to speed up big lower-bound instances); the determinism property is
//! checked by tests.
//!
//! # Round anatomy
//!
//! Every round is three chunked passes over the node array, each a
//! word-parallel sweep of the halted bitset so cost tracks the **live
//! frontier** (the paper's Definition 1 is exactly the observation that
//! most nodes halt long before the worst-case round):
//!
//! 1. **step** — activate every live node (`init` at round 0, `round`
//!    after); sends land in per-arc outbox slots, commits in per-chunk
//!    event buffers, halts in per-chunk halt buffers.
//! 2. **audit** — sweep the nodes that were live *at the start* of the
//!    round (the only possible senders): count messages for the CONGEST
//!    audit, clear slots addressed to receivers that halted this round,
//!    and zero the per-node `sent` counters.
//! 3. **gather** — sweep the nodes still live *after* this round's halts:
//!    each receiver pulls its neighbors' slot messages (in ascending
//!    neighbor id order, via [`Graph::sorted_port_order`]) into its own
//!    region of the inbox arena. Delta routing falls out for free: a
//!    halted region of the graph is skipped by the bitset sweep, and
//!    arcs whose sender went quiet hold `None` and cost one branch.
//!
//! The passes are the *same code* on both executors — the sequential
//! loop is the 1-chunk special case — so executor choice, thread count,
//! and chunk geometry are pure performance knobs that cannot perturb the
//! transcript. Parallel runs distribute chunks over a persistent
//! [`WorkerPool`] (spawned once per run, or once
//! per [`Workspace`] when runs are batched) instead of respawning scoped
//! threads every round.

use crate::bitset::Bitset;
use crate::message::{Envelope, MessageSize};
use crate::pool::WorkerPool;
use crate::process::{Ctx, Event, EventBuf, Knowledge, Process};
use crate::transcript::{Round, Transcript, TranscriptPolicy, UNCOMMITTED};
pub use crate::workspace::Workspace;
use localavg_graph::rng::Rng;
use localavg_graph::{Graph, NodeId};
use std::any::TypeId;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; node `v` uses the substream `seed.fork(v)`.
    pub seed: u64,
    /// Hard cap on rounds; exceeding it panics (indicates a non-terminating
    /// algorithm — every algorithm in this workspace halts explicitly).
    pub max_rounds: usize,
    /// Initial knowledge configuration.
    pub knowledge: Knowledge,
    /// Number of worker threads for [`run_parallel`] (ignored by
    /// [`run_sequential`]); 0 means "number of available cores".
    pub threads: usize,
    /// How much ledger the transcript retains (see [`TranscriptPolicy`]).
    pub transcript: TranscriptPolicy,
    /// Explicit scheduler chunk size (nodes per chunk) for the chunked
    /// executor; `None` picks a balanced default. Setting this *forces*
    /// the chunked code path even below [`PARALLEL_MIN_NODES`] — the
    /// scheduler-adversarial determinism tests use it to probe chunk
    /// boundaries on small instances. A pure performance/testing knob:
    /// transcripts are bit-identical for every value.
    pub chunk_nodes: Option<usize>,
}

impl SimConfig {
    /// Creates a configuration with the given seed and defaults: a
    /// 1,000,000-round cap, full neighbor knowledge, automatic threads,
    /// and a [`TranscriptPolicy::Full`] ledger.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            max_rounds: 1_000_000,
            knowledge: Knowledge::default(),
            threads: 0,
            transcript: TranscriptPolicy::Full,
            chunk_nodes: None,
        }
    }

    /// Sets the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the knowledge configuration.
    #[must_use]
    pub fn with_knowledge(mut self, knowledge: Knowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Sets the worker-thread count for the parallel executor.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the transcript-retention policy.
    #[must_use]
    pub fn with_transcript(mut self, policy: TranscriptPolicy) -> Self {
        self.transcript = policy;
        self
    }

    /// Sets an explicit scheduler chunk size (see [`SimConfig::chunk_nodes`]).
    #[must_use]
    pub fn with_chunk_nodes(mut self, chunk_nodes: Option<usize>) -> Self {
        self.chunk_nodes = chunk_nodes;
        self
    }
}

/// Everything one run needs besides the graph and the algorithm's own
/// parameters: seed, executor, round budget, and transcript policy.
///
/// This is the argument of the unified `execute(&Graph, &RunSpec)` entry
/// points (`localavg-core`'s `Algorithm`/`DynAlgorithm`), replacing the
/// old positional `run(&Graph, seed)` / `run_with_exec(.., exec)` pair.
/// Built like [`SimConfig`], with chainable `with_*` setters:
///
/// ```
/// use localavg_sim::engine::{Exec, RunSpec};
/// use localavg_sim::transcript::TranscriptPolicy;
///
/// let spec = RunSpec::new(7)
///     .with_exec(Exec::Parallel { threads: 2 })
///     .with_transcript(TranscriptPolicy::CompletionsOnly)
///     .with_max_rounds(10_000);
/// assert_eq!(spec.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Master seed; node `v` uses the substream `seed.fork(v)`.
    pub seed: u64,
    /// Executor driving the run (a pure performance knob — transcripts
    /// are bit-identical across executors).
    pub exec: Exec,
    /// Hard cap on rounds (the run panics beyond it).
    pub max_rounds: usize,
    /// How much ledger the transcript retains.
    pub transcript: TranscriptPolicy,
    /// Initial knowledge configuration.
    pub knowledge: Knowledge,
    /// Explicit scheduler chunk size (see [`SimConfig::chunk_nodes`]);
    /// `None` — the default — picks a balanced chunk geometry.
    pub chunk_nodes: Option<usize>,
}

impl RunSpec {
    /// Creates a spec with the given seed and defaults: sequential
    /// executor, 1,000,000-round cap, [`TranscriptPolicy::Full`], full
    /// neighbor knowledge, default chunk geometry.
    pub fn new(seed: u64) -> Self {
        RunSpec {
            seed,
            exec: Exec::Sequential,
            max_rounds: 1_000_000,
            transcript: TranscriptPolicy::Full,
            knowledge: Knowledge::default(),
            chunk_nodes: None,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the executor.
    #[must_use]
    pub fn with_exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the transcript-retention policy.
    #[must_use]
    pub fn with_transcript(mut self, policy: TranscriptPolicy) -> Self {
        self.transcript = policy;
        self
    }

    /// Sets the knowledge configuration.
    #[must_use]
    pub fn with_knowledge(mut self, knowledge: Knowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Sets an explicit scheduler chunk size (see [`SimConfig::chunk_nodes`]).
    #[must_use]
    pub fn with_chunk_nodes(mut self, chunk_nodes: Option<usize>) -> Self {
        self.chunk_nodes = chunk_nodes;
        self
    }

    /// The equivalent [`SimConfig`] (threads resolved from the executor).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            max_rounds: self.max_rounds,
            knowledge: self.knowledge,
            threads: match self.exec {
                Exec::Sequential => 1,
                Exec::Parallel { threads } => threads,
            },
            transcript: self.transcript,
            chunk_nodes: self.chunk_nodes,
        }
    }

    /// Runs `P` under this spec with fresh arenas.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_sequential`].
    pub fn run<P: Process>(
        &self,
        g: &Graph,
        params: &P::Params,
    ) -> Transcript<P::NodeOutput, P::EdgeOutput> {
        self.exec.run::<P>(g, params, &self.sim_config())
    }

    /// Runs `P` under this spec, reusing the arenas in `ws`
    /// (see [`run_spec_in`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_sequential`].
    pub fn run_in<P>(
        &self,
        g: &Graph,
        params: &P::Params,
        ws: &mut Workspace,
    ) -> Transcript<P::NodeOutput, P::EdgeOutput>
    where
        P: Process + 'static,
        P::Message: 'static,
        P::NodeOutput: 'static,
        P::EdgeOutput: 'static,
    {
        run_spec_in::<P>(g, params, self, ws)
    }
}

/// Which executor drives a run.
///
/// Both executors produce bit-identical transcripts (see the module docs),
/// so `Exec` is a pure performance knob: benchmark harnesses and the
/// determinism tests thread it through the `localavg-core` registry's
/// `run_exec` entry points to time or cross-check the two executors on
/// the same algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// Single-threaded executor ([`run_sequential`]).
    #[default]
    Sequential,
    /// Chunked `std::thread::scope` executor ([`run_parallel`]).
    Parallel {
        /// Worker threads; 0 means "number of available cores".
        threads: usize,
    },
}

impl Exec {
    /// Runs `P` under this executor (overriding `cfg.threads` for
    /// [`Exec::Parallel`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_sequential`].
    pub fn run<P: Process>(
        self,
        g: &Graph,
        params: &P::Params,
        cfg: &SimConfig,
    ) -> Transcript<P::NodeOutput, P::EdgeOutput> {
        match self {
            Exec::Sequential => run_sequential::<P>(g, params, cfg),
            Exec::Parallel { threads } => {
                run_parallel::<P>(g, params, &cfg.clone().with_threads(threads))
            }
        }
    }
}

/// Mutable per-run state shared by both executors.
///
/// Everything the per-round inner loop touches is a flat arena sized once
/// from the graph's CSR layout — no per-node heap vectors, no per-round
/// allocation in the steady state:
///
/// * `out_slots` — one message slot per directed arc, addressed by
///   `csr_offset(v) + port` (plus a per-node spill vector for the rare
///   second message on one port in a round);
/// * `inbox` — one contiguous envelope arena; node `v`'s region is its
///   own CSR arc range (`csr_offset(v) .. csr_offset(v) + degree`,
///   `inbox_len[v]` of it filled), so the gather pass needs no counting
///   or prefix-sum repartition — regions are fixed for the whole run and
///   only live receivers are touched;
/// * `halted_bits` / `committed` — columnar bitsets mirroring the
///   per-node flags, letting every pass skip 64 halted nodes per word
///   compare.
struct RunState<P: Process> {
    processes: Vec<Option<P>>,
    rngs: Vec<Rng>,
    /// Per-node halt flag (written by the node's own activation).
    halted: Vec<bool>,
    /// Columnar mirror of `halted`, updated when halts are recorded.
    halted_bits: Bitset,
    /// Columnar "node committed its own output" state.
    committed: Bitset,
    /// Nodes that have not halted yet.
    live: usize,
    /// Outbox arena: slot per arc (`csr_offset(v) + port`).
    out_slots: Vec<Option<P::Message>>,
    /// Per-node overflow for repeated sends on one port (almost always
    /// empty; capacity is retained across rounds).
    out_spill: Vec<Vec<(u32, P::Message)>>,
    /// Per-node count of messages written this round.
    sent: Vec<u32>,
    /// Commit events, one buffer per executor chunk; entries are pushed in
    /// ascending node order within a chunk, so draining chunks in order
    /// replays events in global node order.
    events: Vec<EventBuf<P>>,
    /// Nodes that halted this round, one buffer per executor chunk.
    fresh_halts: Vec<Vec<NodeId>>,
    /// Nodes whose outbox spilled this round, one buffer per executor
    /// chunk; the driver clears exactly these spill vectors after gather.
    spill_nodes: Vec<Vec<NodeId>>,
    /// Per-chunk assembly buffer for the rare inbox that overflows its
    /// arc-range region (spills can deliver more messages than `degree`).
    scratch: Vec<Vec<Envelope<P::Message>>>,
    /// Per-chunk audit accumulators reported by the audit pass.
    audit_parts: Vec<AuditPart>,
    /// Inbox arena: node `v`'s messages for the current round are the
    /// first `inbox_len[v]` entries of its arc range, sorted by sender
    /// id. Grown once (to `degree_sum`) on the first round that delivers
    /// anything.
    inbox: Vec<Envelope<P::Message>>,
    /// Per-node count of messages delivered this round.
    inbox_len: Vec<u32>,
    /// Per-node overflow beyond the arc-range region (spill deliveries
    /// past `degree` messages; almost always empty).
    inbox_over: Vec<Vec<Envelope<P::Message>>>,
    /// Whether the CONGEST audit is recorded (policy [`TranscriptPolicy::Full`]).
    audit: bool,
    /// Whether per-node halt rounds are recorded (policies other than
    /// [`TranscriptPolicy::None`]).
    record_halt_rounds: bool,
    transcript: Transcript<P::NodeOutput, P::EdgeOutput>,
}

/// Accumulators one audit-pass chunk reports back to the driver.
#[derive(Debug, Clone, Copy, Default)]
struct AuditPart {
    /// Messages sent by this chunk's nodes (CONGEST audit; 0 unless the
    /// policy records the audit).
    messages: usize,
    /// Largest message, in bits (0 unless the audit is recorded).
    max_bits: usize,
    /// Messages addressed to *live* receivers — the driver grows the
    /// inbox arena iff any chunk reports a pending delivery.
    deliveries: usize,
}

impl<P: Process> RunState<P> {
    /// An unsized state holding no arenas; [`RunState::reset`] sizes it.
    fn empty() -> Self {
        RunState {
            processes: Vec::new(),
            rngs: Vec::new(),
            halted: Vec::new(),
            halted_bits: Bitset::new(0),
            committed: Bitset::new(0),
            live: 0,
            out_slots: Vec::new(),
            out_spill: Vec::new(),
            sent: Vec::new(),
            events: Vec::new(),
            fresh_halts: Vec::new(),
            spill_nodes: Vec::new(),
            scratch: Vec::new(),
            audit_parts: Vec::new(),
            inbox: Vec::new(),
            inbox_len: Vec::new(),
            inbox_over: Vec::new(),
            audit: true,
            record_halt_rounds: true,
            transcript: Transcript::empty(P::OUTPUT_KIND, 0, 0),
        }
    }

    /// Prepares the state for one run on `g`, reusing every allocation
    /// from a previous run of the same process type on the same CSR
    /// shape. This is the *only* initialization path — fresh runs build
    /// an [`RunState::empty`] state and reset it — so reuse can never
    /// diverge from a cold start.
    fn reset(&mut self, g: &Graph, seed: u64, chunks: usize, policy: TranscriptPolicy) {
        let n = g.n();
        let master = Rng::seed_from(seed);
        self.processes.clear();
        self.processes.resize_with(n, || None);
        self.rngs.clear();
        self.rngs.extend((0..n).map(|v| master.fork(v as u64)));
        self.halted.clear();
        self.halted.resize(n, false);
        self.halted_bits.clear_and_resize(n);
        self.committed.clear_and_resize(n);
        self.live = n;
        // Outbox slots are all `None` at the end of a *completed* run
        // (audit + gather consume every pending message), but a run
        // aborted by a caught panic (e.g. a max_rounds probe) can leave
        // messages behind — refill unconditionally so stale sends can
        // never leak into the next run. This is an O(Σdeg) overwrite of
        // warm memory, the same order as the rest of the reset.
        self.out_slots.clear();
        self.out_slots.resize_with(g.degree_sum(), || None);
        for spill in &mut self.out_spill {
            spill.clear();
        }
        self.out_spill.resize_with(n, Vec::new);
        self.sent.clear();
        self.sent.resize(n, 0);
        for buf in &mut self.events {
            buf.clear();
        }
        self.events.resize_with(chunks, Vec::new);
        for buf in &mut self.fresh_halts {
            buf.clear();
        }
        self.fresh_halts.resize_with(chunks, Vec::new);
        for buf in &mut self.spill_nodes {
            buf.clear();
        }
        self.spill_nodes.resize_with(chunks, Vec::new);
        for buf in &mut self.scratch {
            buf.clear();
        }
        self.scratch.resize_with(chunks, Vec::new);
        self.audit_parts.clear();
        self.audit_parts.resize(chunks, AuditPart::default());
        // The inbox arena keeps its previous length as a high-water mark;
        // stale envelopes are never read because `inbox_len` is zeroed
        // here and only the gather pass raises it — after rewriting the
        // region. An aborted run can leave overflow entries behind, so
        // those are cleared explicitly.
        self.inbox_len.clear();
        self.inbox_len.resize(n, 0);
        for over in &mut self.inbox_over {
            over.clear();
        }
        self.inbox_over.resize_with(n, Vec::new);
        self.audit = policy.records_audit();
        self.record_halt_rounds = policy.records_halts();
        self.transcript = Transcript::empty(P::OUTPUT_KIND, n, g.m());
        if self.audit {
            // Volume columns exist exactly when the audit does; the audit
            // and gather passes accumulate into them in place.
            self.transcript.node_messages_sent = vec![0; n];
            self.transcript.node_bits_sent = vec![0; n];
            self.transcript.node_messages_recv = vec![0; n];
            self.transcript.node_bits_recv = vec![0; n];
        }
    }

    /// Applies commit events (in node order — deterministic) for `round`.
    fn apply_events(&mut self, round: Round) {
        for chunk in &mut self.events {
            for (v, event) in chunk.drain(..) {
                match event {
                    Event::Node(out) => {
                        assert!(
                            !self.committed.get(v),
                            "node {v} committed twice (round {round}); outputs are final"
                        );
                        self.committed.set(v);
                        self.transcript.node_commit_round[v] = round;
                        self.transcript.node_output[v] = Some(out);
                    }
                    Event::Edge(e, out) => match &self.transcript.edge_output[e] {
                        None => {
                            self.transcript.edge_commit_round[e] = round;
                            self.transcript.edge_output[e] = Some(out);
                        }
                        Some(prev) => {
                            assert!(
                                *prev == out,
                                "edge {e} committed with conflicting labels \
                                     ({prev:?} vs {out:?}) — algorithm bug"
                            );
                        }
                    },
                }
            }
        }
    }

    /// Sums the audit pass's per-chunk accumulators:
    /// `(messages, max_bits, live deliveries)`.
    fn collect_audit(&self) -> (usize, usize, usize) {
        let mut messages = 0;
        let mut max_bits = 0;
        let mut deliveries = 0;
        for part in &self.audit_parts {
            messages += part.messages;
            max_bits = max_bits.max(part.max_bits);
            deliveries += part.deliveries;
        }
        (messages, max_bits, deliveries)
    }

    /// Grows the inbox arena to its final size (`Σdeg`) before the first
    /// gather that delivers anything. The filler is a clone of a pending
    /// message; a slot is only ever read after the gather pass wrote it
    /// (`inbox_len` gates every read).
    fn ensure_inbox_arena(&mut self, g: &Graph) {
        let cap = g.degree_sum();
        if self.inbox.len() >= cap {
            return;
        }
        let filler = self
            .pending_message_filler()
            .expect("a live delivery implies a pending message");
        self.inbox.resize(
            cap,
            Envelope {
                src: 0,
                port: 0,
                msg: filler,
            },
        );
    }

    /// A clone of any message still pending in the outbox (arena filler).
    fn pending_message_filler(&self) -> Option<P::Message> {
        if let Some(msg) = self.out_slots.iter().flatten().next() {
            return Some(msg.clone());
        }
        for spill in &self.out_spill {
            if let Some((_, msg)) = spill.first() {
                return Some(msg.clone());
            }
        }
        None
    }

    /// Records this round's halts (chunk order = node order) into the
    /// transcript (unless the policy drops the termination ledger), the
    /// columnar bitset, and the live counter.
    fn record_halts(&mut self, round: Round) {
        for chunk in &mut self.fresh_halts {
            for v in chunk.drain(..) {
                if self.record_halt_rounds {
                    debug_assert_eq!(self.transcript.node_halt_round[v], UNCOMMITTED);
                    self.transcript.node_halt_round[v] = round;
                }
                self.halted_bits.set(v);
                self.live -= 1;
            }
        }
    }

    /// Clears exactly the spill vectors that filled this round (the spill
    /// nodes were recorded by the audit pass; messages toward live
    /// receivers were already cloned out by the gather pass).
    fn drain_spills(&mut self) {
        let spill_nodes = &mut self.spill_nodes;
        let out_spill = &mut self.out_spill;
        for chunk in spill_nodes {
            for u in chunk.drain(..) {
                out_spill[u].clear();
            }
        }
    }

    fn all_halted(&self) -> bool {
        self.live == 0
    }

    /// Bundles this round's shared state for the chunk passes (see
    /// [`RoundShared`]).
    #[allow(clippy::too_many_arguments)]
    fn round_shared<'a>(
        &mut self,
        g: &'a Graph,
        cfg: &'a SimConfig,
        params: &'a P::Params,
        order: Option<&'a [u32]>,
        round: Round,
        max_degree: usize,
        chunk: usize,
    ) -> RoundShared<'a, P> {
        RoundShared {
            g,
            cfg,
            params,
            order,
            round,
            max_degree,
            n: g.n(),
            chunk,
            audit: self.audit,
            processes: self.processes.as_mut_ptr(),
            rngs: self.rngs.as_mut_ptr(),
            halted: self.halted.as_mut_ptr(),
            halted_bits: &self.halted_bits,
            out_slots: self.out_slots.as_mut_ptr(),
            out_spill: self.out_spill.as_mut_ptr(),
            sent: self.sent.as_mut_ptr(),
            events: self.events.as_mut_ptr(),
            fresh_halts: self.fresh_halts.as_mut_ptr(),
            spill_nodes: self.spill_nodes.as_mut_ptr(),
            scratch: self.scratch.as_mut_ptr(),
            audit_parts: self.audit_parts.as_mut_ptr(),
            inbox: self.inbox.as_mut_ptr(),
            inbox_len: self.inbox_len.as_mut_ptr(),
            inbox_over: self.inbox_over.as_mut_ptr(),
            vol_msgs_sent: self.transcript.node_messages_sent.as_mut_ptr(),
            vol_bits_sent: self.transcript.node_bits_sent.as_mut_ptr(),
            vol_msgs_recv: self.transcript.node_messages_recv.as_mut_ptr(),
            vol_bits_recv: self.transcript.node_bits_recv.as_mut_ptr(),
        }
    }
}

/// One round-pass's view of the run state, shared across chunk workers by
/// raw pointer.
///
/// # Safety
///
/// The pointers alias the arenas of one `RunState`, which outlives the
/// pass (the driver blocks in [`dispatch`] until every chunk finished).
/// Data races are excluded structurally, chunk by chunk:
///
/// * per-**node** columns (`processes`, `rngs`, `halted`, `out_spill`,
///   `sent`, `inbox_len`, `inbox_over`, the sender-side volume columns in
///   the audit pass and the receiver-side ones in the gather pass) and
///   per-**chunk** buffers
///   (`events`, `fresh_halts`, `spill_nodes`, `scratch`, `audit_parts`)
///   are written only for indices owned by the running chunk;
/// * the **step** and **audit** passes touch `out_slots` only inside the
///   chunk's own arc ranges; the **gather** pass writes only the *other*
///   direction of each arc — receiver `v` takes from the slot of the arc
///   `u → v`, an index unique to `v` — and reads `out_spill[u]` (shared,
///   immutably: spills are cleared later, by the driver);
/// * `halted_bits` is read-only during every pass (halts recorded by the
///   driver between passes), and `halted` (bools) is written only by a
///   node's own activation, read for *other* nodes only in the audit
///   pass, which runs strictly after the step pass.
struct RoundShared<'a, P: Process> {
    g: &'a Graph,
    cfg: &'a SimConfig,
    params: &'a P::Params,
    /// Receiver-side port permutation (ascending neighbor id); `None`
    /// when adjacency is already sorted.
    order: Option<&'a [u32]>,
    round: Round,
    max_degree: usize,
    n: usize,
    /// Nodes per chunk; chunk `ci` owns `[ci * chunk, min(n, (ci+1) * chunk))`.
    chunk: usize,
    audit: bool,
    processes: *mut Option<P>,
    rngs: *mut Rng,
    halted: *mut bool,
    halted_bits: *const Bitset,
    out_slots: *mut Option<P::Message>,
    out_spill: *mut Vec<(u32, P::Message)>,
    sent: *mut u32,
    events: *mut EventBuf<P>,
    fresh_halts: *mut Vec<NodeId>,
    spill_nodes: *mut Vec<NodeId>,
    scratch: *mut Vec<Envelope<P::Message>>,
    audit_parts: *mut AuditPart,
    inbox: *mut Envelope<P::Message>,
    inbox_len: *mut u32,
    inbox_over: *mut Vec<Envelope<P::Message>>,
    /// Per-node message-volume columns of the transcript (length `n` when
    /// `audit`, empty otherwise — dereferenced only under `audit`). The
    /// *sent* columns are written for sender `u` only by `u`'s owning
    /// chunk in the audit pass; the *recv* columns for receiver `v` only
    /// by `v`'s owning chunk in the gather pass.
    vol_msgs_sent: *mut u64,
    vol_bits_sent: *mut u64,
    vol_msgs_recv: *mut u64,
    vol_bits_recv: *mut u64,
}

// SAFETY: see the struct-level safety contract — all aliasing is
// partitioned per chunk / per arc; `P: Process` already bounds the
// payloads (`Message: Send + Sync`, state `Send`).
#[allow(unsafe_code)]
unsafe impl<P: Process> Sync for RoundShared<'_, P> {}

impl<P: Process> RoundShared<'_, P> {
    /// The node range `[lo, hi)` owned by chunk `ci`.
    #[inline]
    fn range(&self, ci: usize) -> (usize, usize) {
        let lo = ci * self.chunk;
        (lo.min(self.n), (lo + self.chunk).min(self.n))
    }
}

/// **Step pass**: activates every live node of chunk `ci` (`init` at
/// round 0), reading its inbox region and writing sends / commit events /
/// halt flags. See [`RoundShared`] for the aliasing contract.
#[allow(unsafe_code)]
fn step_chunk<P: Process>(sh: &RoundShared<'_, P>, ci: usize) {
    let (lo, hi) = sh.range(ci);
    // SAFETY: chunk `ci` owns nodes `lo..hi` and per-chunk buffer `ci`;
    // the inbox arena is read-only during the step, and every slice stays
    // inside the arena bounds (`inbox_len[v] > 0` implies the arena was
    // grown to Σdeg before the gather that filled it).
    unsafe {
        let events = &mut *sh.events.add(ci);
        let fresh = &mut *sh.fresh_halts.add(ci);
        let scratch = &mut *sh.scratch.add(ci);
        (*sh.halted_bits).for_each_zero_in(lo, hi, |v| {
            let deg = sh.g.degree(v);
            let arc = sh.g.csr_offset(v);
            let k = *sh.inbox_len.add(v) as usize;
            let inbox: &[Envelope<P::Message>] = if k == 0 {
                &[]
            } else {
                let over = &mut *sh.inbox_over.add(v);
                if over.is_empty() {
                    std::slice::from_raw_parts(sh.inbox.add(arc), k)
                } else {
                    // Overflowed region (> deg deliveries via spills):
                    // assemble the full inbox in the chunk scratch.
                    scratch.clear();
                    scratch.extend_from_slice(std::slice::from_raw_parts(sh.inbox.add(arc), deg));
                    scratch.append(over);
                    &scratch[..]
                }
            };
            activate::<P>(
                sh.g,
                sh.cfg,
                sh.params,
                v,
                sh.round,
                sh.max_degree,
                &mut *sh.processes.add(v),
                &mut *sh.rngs.add(v),
                &mut *sh.halted.add(v),
                std::slice::from_raw_parts_mut(sh.out_slots.add(arc), deg),
                &mut *sh.out_spill.add(v),
                &mut *sh.sent.add(v),
                events,
                inbox,
            );
            *sh.inbox_len.add(v) = 0;
            if *sh.halted.add(v) {
                fresh.push(v);
            }
        });
    }
}

/// **Audit pass**: sweeps the chunk's round-start live nodes (the only
/// possible senders), accumulating the CONGEST audit, clearing slots
/// addressed to receivers that halted this round, recording spilling
/// senders, and zeroing `sent`. Runs on the *pre-halt* bitset (a node
/// that halted this round still sent this round). See [`RoundShared`]
/// for the aliasing contract.
#[allow(unsafe_code)]
fn audit_chunk<P: Process>(sh: &RoundShared<'_, P>, ci: usize) {
    let (lo, hi) = sh.range(ci);
    // SAFETY: chunk `ci` owns senders `lo..hi`, their arc ranges of
    // `out_slots`, and per-chunk buffers `ci`; `halted` flags of other
    // nodes are only *read*, and no activation is running.
    unsafe {
        let part = &mut *sh.audit_parts.add(ci);
        *part = AuditPart::default();
        let spills = &mut *sh.spill_nodes.add(ci);
        (*sh.halted_bits).for_each_zero_in(lo, hi, |u| {
            if *sh.sent.add(u) == 0 {
                return;
            }
            *sh.sent.add(u) = 0;
            let nbrs = sh.g.neighbors(u);
            let arc = sh.g.csr_offset(u);
            for (port, &(dst, _)) in nbrs.iter().enumerate() {
                let slot = &mut *sh.out_slots.add(arc + port);
                if let Some(msg) = slot {
                    if sh.audit {
                        let bits = msg.size_bits();
                        part.max_bits = part.max_bits.max(bits);
                        part.messages += 1;
                        *sh.vol_msgs_sent.add(u) += 1;
                        *sh.vol_bits_sent.add(u) += bits as u64;
                    }
                    if *sh.halted.add(dst) {
                        *slot = None; // terminated nodes no longer receive
                    } else {
                        part.deliveries += 1;
                    }
                }
            }
            let spill = &*sh.out_spill.add(u);
            if !spill.is_empty() {
                spills.push(u);
                for (port, msg) in spill {
                    if sh.audit {
                        let bits = msg.size_bits();
                        part.max_bits = part.max_bits.max(bits);
                        part.messages += 1;
                        *sh.vol_msgs_sent.add(u) += 1;
                        *sh.vol_bits_sent.add(u) += bits as u64;
                    }
                    if !*sh.halted.add(nbrs[*port as usize].0) {
                        part.deliveries += 1;
                    }
                }
            }
        });
    }
}

/// **Gather pass**: every receiver still live after this round's halts
/// pulls its neighbors' pending messages into its own inbox region, in
/// ascending sender id order (slot first, then that sender's spills in
/// send order — the inbox ordering the `Process` contract promises).
/// Runs on the *post-halt* bitset. See [`RoundShared`] for the aliasing
/// contract.
#[allow(unsafe_code)]
fn gather_chunk<P: Process>(sh: &RoundShared<'_, P>, ci: usize) {
    let (lo, hi) = sh.range(ci);
    // SAFETY: receiver `v` writes only its own inbox region /
    // `inbox_len` / `inbox_over`, and takes each sender's slot through
    // the arc `u → v` — an index no other receiver touches; sender spill
    // vectors are read-only here.
    unsafe {
        (*sh.halted_bits).for_each_zero_in(lo, hi, |v| {
            let deg = sh.g.degree(v);
            let varc = sh.g.csr_offset(v);
            let nbrs = sh.g.neighbors(v);
            let over = &mut *sh.inbox_over.add(v);
            debug_assert!(over.is_empty());
            let mut k = 0usize;
            for i in 0..deg {
                let p = match sh.order {
                    Some(order) => order[varc + i] as usize,
                    None => i,
                };
                let u = nbrs[p].0;
                // Port of the shared edge at the sender: names both the
                // sender-side outbox slot and the spill entries to match.
                let up = sh.g.rev_port(varc + p);
                let uarc = sh.g.csr_offset(u) + up;
                if let Some(msg) = (*sh.out_slots.add(uarc)).take() {
                    if sh.audit {
                        *sh.vol_msgs_recv.add(v) += 1;
                        *sh.vol_bits_recv.add(v) += msg.size_bits() as u64;
                    }
                    let env = Envelope {
                        src: u,
                        port: p,
                        msg,
                    };
                    if k < deg {
                        *sh.inbox.add(varc + k) = env;
                    } else {
                        over.push(env);
                    }
                    k += 1;
                }
                let spill = &*sh.out_spill.add(u);
                if !spill.is_empty() {
                    for (sport, msg) in spill {
                        if *sport as usize == up {
                            if sh.audit {
                                *sh.vol_msgs_recv.add(v) += 1;
                                *sh.vol_bits_recv.add(v) += msg.size_bits() as u64;
                            }
                            let env = Envelope {
                                src: u,
                                port: p,
                                msg: msg.clone(),
                            };
                            if k < deg {
                                *sh.inbox.add(varc + k) = env;
                            } else {
                                over.push(env);
                            }
                            k += 1;
                        }
                    }
                }
            }
            *sh.inbox_len.add(v) = k as u32;
        });
    }
}

/// Runs `f` over every chunk index: inline when no pool is engaged
/// (sequential and single-chunk runs), otherwise fanned out over the
/// persistent pool (the driving thread participates).
fn dispatch(pool: Option<&WorkerPool>, limit: usize, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    match pool {
        Some(p) if chunks > 1 => p.run(chunks, limit, f),
        _ => {
            for ci in 0..chunks {
                f(ci);
            }
        }
    }
}

/// Activates one node for one round (or init when `round == 0`).
#[allow(clippy::too_many_arguments)]
fn activate<P: Process>(
    g: &Graph,
    cfg: &SimConfig,
    params: &P::Params,
    v: NodeId,
    round: Round,
    max_degree: usize,
    proc_slot: &mut Option<P>,
    rng: &mut Rng,
    halted: &mut bool,
    out_slots: &mut [Option<P::Message>],
    out_spill: &mut Vec<(u32, P::Message)>,
    sent: &mut u32,
    events: &mut EventBuf<P>,
    inbox: &[Envelope<P::Message>],
) {
    let mut ctx = Ctx {
        id: v,
        round,
        graph: g,
        knowledge: cfg.knowledge,
        max_degree,
        rng,
        out_slots,
        out_spill,
        sent,
        events,
        halted,
    };
    if round == 0 {
        *proc_slot = Some(P::init(params, &mut ctx));
    } else {
        proc_slot
            .as_mut()
            .expect("process exists after init")
            .round(&mut ctx, inbox);
    }
}

/// Runs the algorithm to completion on the sequential executor.
///
/// # Panics
///
/// Panics if the algorithm exceeds `cfg.max_rounds` without halting every
/// node, if a node commits its own output twice, or if the two endpoints
/// of an edge commit conflicting labels.
pub fn run_sequential<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    run_with_threads::<P>(g, params, cfg, 1, &mut RunState::empty(), None)
}

/// Runs the algorithm on the chunked parallel executor, spawning a
/// transient [`WorkerPool`] for the run. Batched
/// callers should prefer [`run_spec_in`], whose [`Workspace`] keeps the
/// pool (and the arenas) alive across runs.
///
/// Produces a transcript bit-identical to [`run_sequential`]; see the
/// module docs for why.
///
/// # Panics
///
/// Same conditions as [`run_sequential`].
pub fn run_parallel<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    run_with_threads::<P>(
        g,
        params,
        cfg,
        resolve_threads(cfg.threads),
        &mut RunState::empty(),
        None,
    )
}

/// Resolves a thread count with the `0 = all available cores` convention.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        threads
    }
    .max(1)
}

/// Below this node count [`run_parallel`] falls back to the sequential
/// loop — chunking overhead would dominate. Exported so tests asserting
/// that the parallel executor really ran can size their instances
/// against the actual threshold instead of a copied magic number. An
/// explicit [`SimConfig::chunk_nodes`] overrides the fallback: the
/// chunked path then runs at any instance size (the scheduler-adversarial
/// determinism tests rely on this).
pub const PARALLEL_MIN_NODES: usize = 256;

/// Chunk geometry when none is forced: about four chunks per thread (the
/// cursor-race scheduling in the pool then smooths load imbalance),
/// rounded up to whole 64-bit bitset words so no word of the halted
/// bitset straddles a chunk boundary.
fn default_chunk(n: usize, threads: usize) -> usize {
    let target = n.div_ceil(threads.max(1) * 4).max(64);
    target.div_ceil(64) * 64
}

/// Runs `P` under `spec`, reusing the arenas stored in `ws`.
///
/// The first run of a process type (or the first after a CSR shape
/// change) allocates its arenas inside the workspace; subsequent runs
/// reuse them, paying only an O(n + m) reset instead of fresh
/// allocations. The first *parallel* run additionally spawns the
/// workspace's persistent worker pool; later parallel runs reuse its
/// threads. Transcripts are bit-identical to workspace-less runs — the
/// reset path is the only initialization path in the engine.
///
/// # Panics
///
/// Same conditions as [`run_sequential`].
pub fn run_spec_in<P>(
    g: &Graph,
    params: &P::Params,
    spec: &RunSpec,
    ws: &mut Workspace,
) -> Transcript<P::NodeOutput, P::EdgeOutput>
where
    P: Process + 'static,
    P::Message: 'static,
    P::NodeOutput: 'static,
    P::EdgeOutput: 'static,
{
    let cfg = spec.sim_config();
    let threads = match spec.exec {
        Exec::Sequential => 1,
        Exec::Parallel { threads } => resolve_threads(threads),
    };
    let shape = (g.n(), g.m(), g.degree_sum());
    let Workspace {
        shape: ws_shape,
        states,
        pool,
        reuses,
        runs,
    } = ws;
    if *ws_shape != Some(shape) {
        states.clear();
        *ws_shape = Some(shape);
    }
    *runs += 1;
    let slot = states.entry(TypeId::of::<P>());
    if let std::collections::hash_map::Entry::Occupied(_) = &slot {
        *reuses += 1;
    }
    let state = slot
        .or_insert_with(|| Box::new(RunState::<P>::empty()))
        .downcast_mut::<RunState<P>>()
        .expect("workspace slot keyed by process type");
    run_with_threads::<P>(g, params, &cfg, threads, state, Some(pool))
}

fn run_with_threads<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
    threads: usize,
    state: &mut RunState<P>,
    ws_pool: Option<&mut Option<WorkerPool>>,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    let n = g.n();
    // The chunk geometry is fixed for the whole run: small instances and
    // one-thread configs run as a single chunk unless an explicit chunk
    // size forces the chunked path.
    let chunked = match cfg.chunk_nodes {
        Some(_) => true,
        None => threads > 1 && n >= PARALLEL_MIN_NODES,
    };
    let chunk = match cfg.chunk_nodes {
        Some(c) => c.max(1),
        None if chunked => default_chunk(n, threads),
        None => n.max(1),
    };
    let chunks = if chunked { n.div_ceil(chunk).max(1) } else { 1 };
    // Acquire worker threads: the workspace's resident pool when running
    // through one (grown if this run wants more workers than it has), a
    // transient pool otherwise. `threads` counts the driver, so a
    // `threads = t` run keeps `t - 1` workers grabbing chunks.
    let workers = if chunks > 1 {
        threads.saturating_sub(1)
    } else {
        0
    };
    let mut transient = None;
    let pool: Option<&WorkerPool> = if workers > 0 {
        match ws_pool {
            Some(slot) => {
                if slot.as_ref().is_none_or(|p| p.workers() < workers) {
                    *slot = Some(WorkerPool::new(workers));
                }
                slot.as_ref()
            }
            None => Some(transient.insert(WorkerPool::new(workers))),
        }
    } else {
        None
    };
    state.reset(g, cfg.seed, chunks, cfg.transcript);
    let max_degree = g.max_degree();
    // Receiver-side gather walks senders in ascending id order; for
    // insertion-ordered adjacencies that is a cached permutation.
    let order = g.sorted_port_order();

    let mut round: Round = 0;
    loop {
        {
            let sh = state.round_shared(g, cfg, params, order, round, max_degree, chunk);
            dispatch(pool, workers, chunks, &|ci| step_chunk::<P>(&sh, ci));
        }
        state.apply_events(round);
        {
            let sh = state.round_shared(g, cfg, params, order, round, max_degree, chunk);
            dispatch(pool, workers, chunks, &|ci| audit_chunk::<P>(&sh, ci));
        }
        let (messages, round_max_bits, deliveries) = state.collect_audit();
        state.record_halts(round);
        if state.audit {
            state.transcript.messages_sent += messages;
            state.transcript.max_message_bits.push(round_max_bits);
        }
        if state.record_halt_rounds {
            state.transcript.live_after_round.push(state.live);
        }
        if state.all_halted() {
            break;
        }
        if deliveries > 0 {
            state.ensure_inbox_arena(g);
        }
        {
            let sh = state.round_shared(g, cfg, params, order, round, max_degree, chunk);
            dispatch(pool, workers, chunks, &|ci| gather_chunk::<P>(&sh, ci));
        }
        state.drain_spills();
        round += 1;
        assert!(
            round <= cfg.max_rounds,
            "algorithm exceeded max_rounds={} without halting",
            cfg.max_rounds
        );
    }
    state.transcript.rounds = round;
    // Hand the ledger to the caller; the arenas stay behind for reuse.
    std::mem::replace(
        &mut state.transcript,
        Transcript::empty(P::OUTPUT_KIND, 0, 0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use localavg_graph::gen;

    /// Every node floods the maximum id it has seen for `radius` rounds,
    /// then commits it. Classic LOCAL warm-up; lets us test delivery,
    /// rounds, ports, and both executors.
    struct MaxFlood {
        best: u64,
        radius: usize,
    }

    impl Process for MaxFlood {
        type Message = u64;
        type NodeOutput = u64;
        type EdgeOutput = ();
        type Params = usize; // radius

        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(radius: &usize, ctx: &mut Ctx<'_, Self>) -> Self {
            ctx.broadcast(ctx.id() as u64);
            MaxFlood {
                best: ctx.id() as u64,
                radius: *radius,
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.best = self.best.max(env.msg);
            }
            if ctx.round() < self.radius {
                ctx.broadcast(self.best);
            } else {
                ctx.commit_node(self.best);
                ctx.halt();
            }
        }
    }

    const RADIUS: usize = 3;

    #[test]
    fn flood_reaches_radius() {
        let g = gen::path(8);
        let cfg = SimConfig::new(1);
        let t = run_sequential::<MaxFlood>(&g, &RADIUS, &cfg);
        // After 3 rounds of flooding, node 0 has seen ids up to distance 3.
        assert_eq!(t.node_output[0], Some(3));
        assert_eq!(t.node_output[4], Some(7));
        assert_eq!(t.rounds, 3);
        assert!(t.all_nodes_committed());
        assert!(t.is_complete());
        // Everyone committed at round 3 and halted at round 3.
        assert!(t.node_commit_round.iter().all(|&r| r == 3));
        assert!(t.node_halt_round.iter().all(|&r| r == 3));
    }

    #[test]
    fn congest_accounting() {
        let g = gen::cycle(6);
        let t = run_sequential::<MaxFlood>(&g, &RADIUS, &SimConfig::new(2));
        assert_eq!(t.peak_message_bits(), Some(64));
        // 6 nodes broadcast to 2 neighbors for rounds 0..=2 (round 3 commits).
        assert_eq!(t.messages_sent, 6 * 2 * 3);
        // Per-node volume: every node sends and receives 2 messages per
        // flooding round, 64 bits each; the columns sum to the totals.
        assert_eq!(t.node_messages_sent, vec![2 * 3; 6]);
        assert_eq!(t.node_messages_recv, vec![2 * 3; 6]);
        assert_eq!(t.node_bits_sent, vec![2 * 3 * 64; 6]);
        assert_eq!(t.node_bits_recv, vec![2 * 3 * 64; 6]);
        assert_eq!(
            t.node_messages_sent.iter().sum::<u64>(),
            t.messages_sent as u64
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::grid(8, 9);
        let cfg = SimConfig::new(7).with_threads(4);
        let a = run_sequential::<MaxFlood>(&g, &RADIUS, &cfg);
        let b = run_parallel::<MaxFlood>(&g, &RADIUS, &cfg);
        assert_eq!(a.node_output, b.node_output);
        assert_eq!(a.node_commit_round, b.node_commit_round);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    /// A randomized process: commits a coin flip at round 0. Used to verify
    /// per-node randomness is a function of (seed, id) only.
    struct CoinFlip;

    impl Process for CoinFlip {
        type Message = ();
        type NodeOutput = bool;
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            let flip = ctx.rng().chance(0.5);
            ctx.commit_node(flip);
            ctx.halt();
            CoinFlip
        }

        fn round(&mut self, _ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<()>]) {
            unreachable!("halted at init");
        }
    }

    #[test]
    fn randomness_is_seed_deterministic() {
        let g = gen::cycle(32);
        let a = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(5));
        let b = run_parallel::<CoinFlip>(&g, &(), &SimConfig::new(5).with_threads(3));
        let c = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(6));
        assert_eq!(a.node_output, b.node_output);
        assert_ne!(a.node_output, c.node_output);
        assert_eq!(a.rounds, 0, "0-round algorithm");
    }

    /// Edge-labelling process: each edge is committed by its lower-id
    /// endpoint with label = sum of endpoint ids; the higher endpoint
    /// commits the same label one round later (consistency check).
    struct EdgeLabel;

    #[derive(Debug, Clone, PartialEq)]
    struct NoMsg;
    impl MessageSize for NoMsg {
        fn size_bits(&self) -> usize {
            0
        }
    }

    impl Process for EdgeLabel {
        type Message = NoMsg;
        type NodeOutput = ();
        type EdgeOutput = u64;
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            for port in ctx.ports() {
                let u = ctx.neighbor_id(port);
                if ctx.id() < u {
                    let label = (ctx.id() + u) as u64;
                    ctx.commit_edge(port, label);
                }
            }
            EdgeLabel
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<NoMsg>]) {
            for port in ctx.ports() {
                let u = ctx.neighbor_id(port);
                if ctx.id() > u {
                    let label = (ctx.id() + u) as u64;
                    ctx.commit_edge(port, label);
                }
            }
            ctx.halt();
        }
    }

    #[test]
    fn edge_commits_record_earliest_round_and_agree() {
        let g = gen::path(4);
        let t = run_sequential::<EdgeLabel>(&g, &(), &SimConfig::new(1));
        assert!(t.all_edges_committed());
        // Lower endpoint committed at round 0; duplicate commit at round 1
        // must not move the recorded round.
        assert!(t.edge_commit_round.iter().all(|&r| r == 0));
        let labels = t.edge_labels();
        for (e, u, v) in g.edges() {
            assert_eq!(labels[e], (u + v) as u64);
        }
        assert_eq!(t.kind, OutputKind::EdgeLabels);
    }

    /// Conflicting edge labels must panic.
    struct BadEdgeLabel;

    impl Process for BadEdgeLabel {
        type Message = NoMsg;
        type NodeOutput = ();
        type EdgeOutput = u64;
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            for port in ctx.ports() {
                ctx.commit_edge(port, ctx.id() as u64); // endpoints disagree
            }
            ctx.halt();
            BadEdgeLabel
        }

        fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<NoMsg>]) {}
    }

    #[test]
    #[should_panic(expected = "conflicting labels")]
    fn conflicting_edge_commit_panics() {
        let g = gen::path(2);
        let _ = run_sequential::<BadEdgeLabel>(&g, &(), &SimConfig::new(1));
    }

    /// A process that never halts must trip the round cap.
    struct Forever;
    impl Process for Forever {
        type Message = ();
        type NodeOutput = ();
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
        fn init(_: &(), _: &mut Ctx<'_, Self>) -> Self {
            Forever
        }
        fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {}
    }

    #[test]
    #[should_panic(expected = "max_rounds")]
    fn round_cap_panics() {
        let g = gen::path(3);
        let cfg = SimConfig::new(1).with_max_rounds(10);
        let _ = run_sequential::<Forever>(&g, &(), &cfg);
    }

    #[test]
    fn knowledge_gating() {
        struct NosyProcess;
        impl Process for NosyProcess {
            type Message = ();
            type NodeOutput = ();
            type EdgeOutput = ();
            type Params = ();
            const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
            fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
                let _ = ctx.neighbor_id(0); // should panic without knowledge
                NosyProcess
            }
            fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {}
        }
        let g = gen::path(2);
        let cfg = SimConfig::new(1).with_knowledge(Knowledge {
            neighbor_ids: false,
            neighbor_degrees: false,
        });
        let result = std::panic::catch_unwind(|| {
            let _ = run_sequential::<NosyProcess>(&g, &(), &cfg);
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_graph_trivial_run() {
        let g = Graph::empty(0);
        let t = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(1));
        assert_eq!(t.rounds, 0);
        assert!(t.is_complete());
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::new(9)
            .with_max_rounds(50)
            .with_threads(2)
            .with_knowledge(Knowledge::default())
            .with_transcript(TranscriptPolicy::CompletionsOnly);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_rounds, 50);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.transcript, TranscriptPolicy::CompletionsOnly);
    }

    #[test]
    fn run_spec_builders_and_sim_config() {
        let spec = RunSpec::new(3)
            .with_seed(4)
            .with_exec(Exec::Parallel { threads: 2 })
            .with_max_rounds(99)
            .with_transcript(TranscriptPolicy::None)
            .with_knowledge(Knowledge::default());
        assert_eq!(spec.seed, 4);
        assert_eq!(spec.max_rounds, 99);
        let cfg = spec.sim_config();
        assert_eq!(cfg.seed, 4);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.max_rounds, 99);
        assert_eq!(cfg.transcript, TranscriptPolicy::None);
        assert_eq!(RunSpec::new(1).sim_config().threads, 1);
    }

    #[test]
    fn transcript_policy_drops_only_what_it_promises() {
        let g = gen::grid(6, 6);
        let full = RunSpec::new(5).run::<MaxFlood>(&g, &RADIUS);
        let completions = RunSpec::new(5)
            .with_transcript(TranscriptPolicy::CompletionsOnly)
            .run::<MaxFlood>(&g, &RADIUS);
        let none = RunSpec::new(5)
            .with_transcript(TranscriptPolicy::None)
            .run::<MaxFlood>(&g, &RADIUS);
        // Outputs and commit clocks survive every policy.
        for t in [&completions, &none] {
            assert_eq!(t.node_output, full.node_output);
            assert_eq!(t.node_commit_round, full.node_commit_round);
            assert_eq!(t.rounds, full.rounds);
            assert!(t.is_complete());
            // The CONGEST audit is gone below Full — including the
            // per-node volume columns — and the peak reports "unaudited".
            assert!(t.max_message_bits.is_empty());
            assert_eq!(t.messages_sent, 0);
            assert!(!t.audited());
            assert_eq!(t.peak_message_bits(), None);
            assert!(t.node_messages_sent.is_empty());
            assert!(t.node_bits_sent.is_empty());
            assert!(t.node_messages_recv.is_empty());
            assert!(t.node_bits_recv.is_empty());
        }
        assert!(full.messages_sent > 0);
        assert!(!full.max_message_bits.is_empty());
        assert_eq!(
            full.node_messages_sent.iter().sum::<u64>(),
            full.messages_sent as u64
        );
        // Halt clocks survive CompletionsOnly but not None, and the
        // live-frontier ledger travels with them.
        assert_eq!(completions.node_halt_round, full.node_halt_round);
        assert_eq!(completions.live_after_round, full.live_after_round);
        assert_eq!(full.live_after_round.len(), full.rounds as usize + 1);
        assert!(none.node_halt_round.iter().all(|&r| r == UNCOMMITTED));
        assert!(none.live_after_round.is_empty());
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_runs() {
        let g = gen::grid(8, 9);
        let mut ws = Workspace::new();
        let spec = RunSpec::new(7);
        let first = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        let reused = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        let fresh = spec.run::<MaxFlood>(&g, &RADIUS);
        assert_eq!(ws.run_count(), 2);
        assert_eq!(ws.reuse_count(), 1);
        assert_eq!(first.node_output, fresh.node_output);
        assert_eq!(reused.node_output, fresh.node_output);
        assert_eq!(reused.node_commit_round, fresh.node_commit_round);
        assert_eq!(reused.node_halt_round, fresh.node_halt_round);
        assert_eq!(reused.max_message_bits, fresh.max_message_bits);
        assert_eq!(reused.messages_sent, fresh.messages_sent);
        assert_eq!(reused.node_messages_sent, fresh.node_messages_sent);
        assert_eq!(reused.node_bits_sent, fresh.node_bits_sent);
        assert_eq!(reused.node_messages_recv, fresh.node_messages_recv);
        assert_eq!(reused.node_bits_recv, fresh.node_bits_recv);
        // A different seed through the same arenas still matches fresh.
        let other_ws = spec.with_seed(9).run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        let other = RunSpec::new(9).run::<MaxFlood>(&g, &RADIUS);
        assert_eq!(other_ws.node_output, other.node_output);
    }

    #[test]
    fn workspace_handles_shape_changes_and_many_process_types() {
        let small = gen::path(6);
        let big = gen::grid(7, 7);
        let mut ws = Workspace::new();
        let spec = RunSpec::new(2);
        let _ = spec.run_in::<MaxFlood>(&small, &RADIUS, &mut ws);
        let _ = spec.run_in::<CoinFlip>(&small, &(), &mut ws);
        assert_eq!(ws.arena_count(), 2);
        // Shape change flushes the stored arenas, then runs fine.
        let on_big = spec.run_in::<MaxFlood>(&big, &RADIUS, &mut ws);
        assert_eq!(ws.arena_count(), 1);
        assert_eq!(
            on_big.node_output,
            spec.run::<MaxFlood>(&big, &RADIUS).node_output
        );
        // Back to the small shape: flush again, still correct.
        let back = spec.run_in::<MaxFlood>(&small, &RADIUS, &mut ws);
        assert_eq!(
            back.node_output,
            spec.run::<MaxFlood>(&small, &RADIUS).node_output
        );
    }

    #[test]
    fn workspace_reuse_after_an_aborted_run_is_clean() {
        // A run that panics mid-round leaves messages pending in the
        // outbox arena. Reusing the workspace afterwards — for the same
        // process type, hence the same arena slot — must behave exactly
        // like a fresh run: stale sends must not be delivered (they
        // would spill behind the next run's own sends).
        use std::sync::atomic::{AtomicBool, Ordering};
        static POISON: AtomicBool = AtomicBool::new(false);

        /// Broadcasts in rounds 0 and 1; while `POISON` is set, node 5
        /// panics in round 1 *after* lower-id nodes already wrote their
        /// round-1 sends into the shared outbox arena.
        struct MidRoundPanic;
        impl Process for MidRoundPanic {
            type Message = u64;
            type NodeOutput = u64;
            type EdgeOutput = ();
            type Params = ();
            const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
            fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
                ctx.broadcast(1);
                MidRoundPanic
            }
            fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
                if ctx.round() == 1 {
                    ctx.broadcast(2);
                    assert!(
                        !(POISON.load(Ordering::Relaxed) && ctx.id() == 5),
                        "poisoned node"
                    );
                } else {
                    ctx.commit_node(inbox.iter().map(|e| e.msg).sum());
                    ctx.halt();
                }
            }
        }

        let g = gen::grid(6, 6); // node 5 exists; sequential id order
        let mut ws = Workspace::new();
        let spec = RunSpec::new(4);
        POISON.store(true, Ordering::Relaxed);
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = spec.run_in::<MidRoundPanic>(&g, &(), &mut ws);
        }));
        assert!(aborted.is_err(), "the poisoned run must panic");
        POISON.store(false, Ordering::Relaxed);
        // Same process type through the abandoned arena: the pending
        // round-1 broadcasts of nodes 0..5 must be gone.
        let reused = spec.run_in::<MidRoundPanic>(&g, &(), &mut ws);
        let fresh = spec.run::<MidRoundPanic>(&g, &());
        assert_eq!(reused.node_output, fresh.node_output);
        assert_eq!(reused.messages_sent, fresh.messages_sent);
        assert_eq!(reused.max_message_bits, fresh.max_message_bits);
    }

    #[test]
    fn workspace_reuse_matches_fresh_across_executors_and_policies() {
        let g = gen::grid(17, 17); // big enough to really chunk
        assert!(g.n() >= PARALLEL_MIN_NODES);
        let mut ws = Workspace::new();
        for policy in [
            TranscriptPolicy::Full,
            TranscriptPolicy::CompletionsOnly,
            TranscriptPolicy::None,
        ] {
            for exec in [Exec::Sequential, Exec::Parallel { threads: 3 }] {
                let spec = RunSpec::new(11).with_exec(exec).with_transcript(policy);
                let reused = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
                let fresh = spec.run::<MaxFlood>(&g, &RADIUS);
                assert_eq!(reused.node_output, fresh.node_output);
                assert_eq!(reused.node_commit_round, fresh.node_commit_round);
                assert_eq!(reused.node_halt_round, fresh.node_halt_round);
                assert_eq!(reused.max_message_bits, fresh.max_message_bits);
                assert_eq!(reused.node_messages_sent, fresh.node_messages_sent);
                assert_eq!(reused.node_bits_recv, fresh.node_bits_recv);
            }
        }
        assert_eq!(ws.reuse_count(), 5);
    }

    /// Nodes halt in waves (round `id % 5`), never sending — a pure
    /// frontier-decay workload for the live ledger.
    struct Staircase;

    impl Process for Staircase {
        type Message = ();
        type NodeOutput = u64;
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            ctx.commit_node(ctx.id() as u64);
            if ctx.id().is_multiple_of(5) {
                ctx.halt();
            }
            Staircase
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {
            if ctx.round() >= (ctx.id() % 5) as Round {
                ctx.halt();
            }
        }
    }

    #[test]
    fn live_ledger_matches_a_recount_from_halt_rounds() {
        let g = gen::grid(6, 7);
        let t = RunSpec::new(3).run::<Staircase>(&g, &());
        assert_eq!(t.rounds, 4);
        assert_eq!(t.live_after_round.len(), 5);
        // Monotone non-increasing, ending at zero.
        assert!(t.live_after_round.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(*t.live_after_round.last().unwrap(), 0);
        // Every entry recomputes from the per-node termination ledger.
        for (r, &live) in t.live_after_round.iter().enumerate() {
            let recount = t
                .node_halt_round
                .iter()
                .filter(|&&h| h > r as Round)
                .count();
            assert_eq!(live, recount, "live count at round {r}");
        }
    }

    #[test]
    fn chunk_geometry_never_changes_the_transcript() {
        // Small enough that the default geometry is a single chunk: the
        // explicit override is what forces the chunked path here.
        let g = gen::grid(6, 6);
        let baseline = RunSpec::new(5).run::<MaxFlood>(&g, &RADIUS);
        assert!(g.n() < PARALLEL_MIN_NODES);
        for chunk in [1, 3, 7, 36, 1000] {
            for threads in [1, 2, 8] {
                let spec = RunSpec::new(5)
                    .with_exec(Exec::Parallel { threads })
                    .with_chunk_nodes(Some(chunk));
                let t = spec.run::<MaxFlood>(&g, &RADIUS);
                assert_eq!(
                    t, baseline,
                    "transcript drift at chunk={chunk} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn workspace_keeps_a_resident_pool_across_runs() {
        let g = gen::grid(17, 17);
        assert!(g.n() >= PARALLEL_MIN_NODES);
        let mut ws = Workspace::new();
        let seq = RunSpec::new(2).run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        assert_eq!(ws.pool_workers(), 0, "sequential runs never spawn the pool");
        let spec = RunSpec::new(2).with_exec(Exec::Parallel { threads: 3 });
        let par = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        assert_eq!(par, seq);
        assert_eq!(ws.pool_workers(), 2, "threads = 3 keeps 2 pool workers");
        // Re-running with fewer threads reuses the bigger pool as-is …
        let spec2 = RunSpec::new(2).with_exec(Exec::Parallel { threads: 2 });
        assert_eq!(spec2.run_in::<MaxFlood>(&g, &RADIUS, &mut ws), seq);
        assert_eq!(ws.pool_workers(), 2);
        // … a wider run grows it, and clear() keeps it.
        let spec3 = RunSpec::new(2).with_exec(Exec::Parallel { threads: 4 });
        assert_eq!(spec3.run_in::<MaxFlood>(&g, &RADIUS, &mut ws), seq);
        assert_eq!(ws.pool_workers(), 3);
        ws.clear();
        assert_eq!(ws.pool_workers(), 3);
    }
}
