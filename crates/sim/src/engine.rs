//! The synchronous round engine (sequential and parallel executors).
//!
//! Both executors produce *bit-identical* [`Transcript`]s: per-node
//! randomness is derived from `(seed, node id)` alone, inboxes are ordered
//! by sender id, and commit events are applied in node order. The parallel
//! executor exists to exercise realistic concurrent message passing (and
//! to speed up big lower-bound instances); the determinism property is
//! checked by tests.

use crate::bitset::Bitset;
use crate::message::{Envelope, MessageSize};
use crate::process::{Ctx, Event, EventBuf, Knowledge, Process};
use crate::transcript::{Round, Transcript, TranscriptPolicy, UNCOMMITTED};
pub use crate::workspace::Workspace;
use localavg_graph::rng::Rng;
use localavg_graph::{Graph, NodeId};
use std::any::TypeId;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; node `v` uses the substream `seed.fork(v)`.
    pub seed: u64,
    /// Hard cap on rounds; exceeding it panics (indicates a non-terminating
    /// algorithm — every algorithm in this workspace halts explicitly).
    pub max_rounds: usize,
    /// Initial knowledge configuration.
    pub knowledge: Knowledge,
    /// Number of worker threads for [`run_parallel`] (ignored by
    /// [`run_sequential`]); 0 means "number of available cores".
    pub threads: usize,
    /// How much ledger the transcript retains (see [`TranscriptPolicy`]).
    pub transcript: TranscriptPolicy,
}

impl SimConfig {
    /// Creates a configuration with the given seed and defaults: a
    /// 1,000,000-round cap, full neighbor knowledge, automatic threads,
    /// and a [`TranscriptPolicy::Full`] ledger.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            max_rounds: 1_000_000,
            knowledge: Knowledge::default(),
            threads: 0,
            transcript: TranscriptPolicy::Full,
        }
    }

    /// Sets the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the knowledge configuration.
    #[must_use]
    pub fn with_knowledge(mut self, knowledge: Knowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Sets the worker-thread count for the parallel executor.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the transcript-retention policy.
    #[must_use]
    pub fn with_transcript(mut self, policy: TranscriptPolicy) -> Self {
        self.transcript = policy;
        self
    }
}

/// Everything one run needs besides the graph and the algorithm's own
/// parameters: seed, executor, round budget, and transcript policy.
///
/// This is the argument of the unified `execute(&Graph, &RunSpec)` entry
/// points (`localavg-core`'s `Algorithm`/`DynAlgorithm`), replacing the
/// old positional `run(&Graph, seed)` / `run_with_exec(.., exec)` pair.
/// Built like [`SimConfig`], with chainable `with_*` setters:
///
/// ```
/// use localavg_sim::engine::{Exec, RunSpec};
/// use localavg_sim::transcript::TranscriptPolicy;
///
/// let spec = RunSpec::new(7)
///     .with_exec(Exec::Parallel { threads: 2 })
///     .with_transcript(TranscriptPolicy::CompletionsOnly)
///     .with_max_rounds(10_000);
/// assert_eq!(spec.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Master seed; node `v` uses the substream `seed.fork(v)`.
    pub seed: u64,
    /// Executor driving the run (a pure performance knob — transcripts
    /// are bit-identical across executors).
    pub exec: Exec,
    /// Hard cap on rounds (the run panics beyond it).
    pub max_rounds: usize,
    /// How much ledger the transcript retains.
    pub transcript: TranscriptPolicy,
    /// Initial knowledge configuration.
    pub knowledge: Knowledge,
}

impl RunSpec {
    /// Creates a spec with the given seed and defaults: sequential
    /// executor, 1,000,000-round cap, [`TranscriptPolicy::Full`], full
    /// neighbor knowledge.
    pub fn new(seed: u64) -> Self {
        RunSpec {
            seed,
            exec: Exec::Sequential,
            max_rounds: 1_000_000,
            transcript: TranscriptPolicy::Full,
            knowledge: Knowledge::default(),
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the executor.
    #[must_use]
    pub fn with_exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the transcript-retention policy.
    #[must_use]
    pub fn with_transcript(mut self, policy: TranscriptPolicy) -> Self {
        self.transcript = policy;
        self
    }

    /// Sets the knowledge configuration.
    #[must_use]
    pub fn with_knowledge(mut self, knowledge: Knowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// The equivalent [`SimConfig`] (threads resolved from the executor).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            max_rounds: self.max_rounds,
            knowledge: self.knowledge,
            threads: match self.exec {
                Exec::Sequential => 1,
                Exec::Parallel { threads } => threads,
            },
            transcript: self.transcript,
        }
    }

    /// Runs `P` under this spec with fresh arenas.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_sequential`].
    pub fn run<P: Process>(
        &self,
        g: &Graph,
        params: &P::Params,
    ) -> Transcript<P::NodeOutput, P::EdgeOutput> {
        self.exec.run::<P>(g, params, &self.sim_config())
    }

    /// Runs `P` under this spec, reusing the arenas in `ws`
    /// (see [`run_spec_in`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_sequential`].
    pub fn run_in<P>(
        &self,
        g: &Graph,
        params: &P::Params,
        ws: &mut Workspace,
    ) -> Transcript<P::NodeOutput, P::EdgeOutput>
    where
        P: Process + 'static,
        P::Message: 'static,
        P::NodeOutput: 'static,
        P::EdgeOutput: 'static,
    {
        run_spec_in::<P>(g, params, self, ws)
    }
}

/// Which executor drives a run.
///
/// Both executors produce bit-identical transcripts (see the module docs),
/// so `Exec` is a pure performance knob: benchmark harnesses and the
/// determinism tests thread it through the `localavg-core` registry's
/// `run_exec` entry points to time or cross-check the two executors on
/// the same algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// Single-threaded executor ([`run_sequential`]).
    #[default]
    Sequential,
    /// Chunked `std::thread::scope` executor ([`run_parallel`]).
    Parallel {
        /// Worker threads; 0 means "number of available cores".
        threads: usize,
    },
}

impl Exec {
    /// Runs `P` under this executor (overriding `cfg.threads` for
    /// [`Exec::Parallel`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_sequential`].
    pub fn run<P: Process>(
        self,
        g: &Graph,
        params: &P::Params,
        cfg: &SimConfig,
    ) -> Transcript<P::NodeOutput, P::EdgeOutput> {
        match self {
            Exec::Sequential => run_sequential::<P>(g, params, cfg),
            Exec::Parallel { threads } => {
                run_parallel::<P>(g, params, &cfg.clone().with_threads(threads))
            }
        }
    }
}

/// Mutable per-run state shared by both executors.
///
/// Everything the per-round inner loop touches is a flat arena sized once
/// from the graph's CSR layout — no per-node heap vectors, no per-round
/// allocation in the steady state:
///
/// * `out_slots` — one message slot per directed arc, addressed by
///   `csr_offset(v) + port` (plus a per-node spill vector for the rare
///   second message on one port in a round);
/// * `inbox` — one contiguous envelope arena per run, re-partitioned each
///   round into per-destination regions by a counting pass (regions are
///   filled in ascending sender order, which is exactly the inbox order
///   the old per-node vectors guaranteed);
/// * `halted_bits` / `committed` — columnar bitsets mirroring the
///   per-node flags, letting the sequential activation loop skip 64
///   halted nodes per word compare.
struct RunState<P: Process> {
    processes: Vec<Option<P>>,
    rngs: Vec<Rng>,
    /// Per-node halt flag (written by the node's own activation).
    halted: Vec<bool>,
    /// Columnar mirror of `halted`, updated when halts are recorded.
    halted_bits: Bitset,
    /// Columnar "node committed its own output" state.
    committed: Bitset,
    /// Nodes that have not halted yet.
    live: usize,
    /// Outbox arena: slot per arc (`csr_offset(v) + port`).
    out_slots: Vec<Option<P::Message>>,
    /// Per-node overflow for repeated sends on one port (almost always
    /// empty; capacity is retained across rounds).
    out_spill: Vec<Vec<(u32, P::Message)>>,
    /// Per-node count of messages written this round.
    sent: Vec<u32>,
    /// Commit events, one buffer per executor chunk; entries are pushed in
    /// ascending node order within a chunk, so draining chunks in order
    /// replays events in global node order.
    events: Vec<EventBuf<P>>,
    /// Nodes that halted this round, one buffer per executor chunk.
    fresh_halts: Vec<Vec<NodeId>>,
    /// Inbox arena; node `v`'s messages for the current round are
    /// `inbox[inbox_start[v]..inbox_start[v + 1]]`, sorted by sender id.
    inbox: Vec<Envelope<P::Message>>,
    /// Per-node region starts into `inbox` (`n + 1` entries).
    inbox_start: Vec<usize>,
    /// Scratch: per-destination counts, then fill cursors, each round.
    cursor: Vec<usize>,
    /// Whether the CONGEST audit is recorded (policy [`TranscriptPolicy::Full`]).
    audit: bool,
    /// Whether per-node halt rounds are recorded (policies other than
    /// [`TranscriptPolicy::None`]).
    record_halt_rounds: bool,
    transcript: Transcript<P::NodeOutput, P::EdgeOutput>,
}

impl<P: Process> RunState<P> {
    /// An unsized state holding no arenas; [`RunState::reset`] sizes it.
    fn empty() -> Self {
        RunState {
            processes: Vec::new(),
            rngs: Vec::new(),
            halted: Vec::new(),
            halted_bits: Bitset::new(0),
            committed: Bitset::new(0),
            live: 0,
            out_slots: Vec::new(),
            out_spill: Vec::new(),
            sent: Vec::new(),
            events: Vec::new(),
            fresh_halts: Vec::new(),
            inbox: Vec::new(),
            inbox_start: Vec::new(),
            cursor: Vec::new(),
            audit: true,
            record_halt_rounds: true,
            transcript: Transcript::empty(P::OUTPUT_KIND, 0, 0),
        }
    }

    /// Prepares the state for one run on `g`, reusing every allocation
    /// from a previous run of the same process type on the same CSR
    /// shape. This is the *only* initialization path — fresh runs build
    /// an [`RunState::empty`] state and reset it — so reuse can never
    /// diverge from a cold start.
    fn reset(&mut self, g: &Graph, seed: u64, chunks: usize, policy: TranscriptPolicy) {
        let n = g.n();
        let master = Rng::seed_from(seed);
        self.processes.clear();
        self.processes.resize_with(n, || None);
        self.rngs.clear();
        self.rngs.extend((0..n).map(|v| master.fork(v as u64)));
        self.halted.clear();
        self.halted.resize(n, false);
        self.halted_bits.clear_and_resize(n);
        self.committed.clear_and_resize(n);
        self.live = n;
        // Outbox slots are all `None` at the end of a *completed* run
        // (routing takes every pending message), but a run aborted by a
        // caught panic (e.g. a max_rounds probe) can leave messages
        // behind — refill unconditionally so stale sends can never leak
        // into the next run. This is an O(Σdeg) overwrite of warm
        // memory, the same order as the rest of the reset.
        self.out_slots.clear();
        self.out_slots.resize_with(g.degree_sum(), || None);
        for spill in &mut self.out_spill {
            spill.clear();
        }
        self.out_spill.resize_with(n, Vec::new);
        self.sent.clear();
        self.sent.resize(n, 0);
        for buf in &mut self.events {
            buf.clear();
        }
        self.events.resize_with(chunks, Vec::new);
        for buf in &mut self.fresh_halts {
            buf.clear();
        }
        self.fresh_halts.resize_with(chunks, Vec::new);
        // The inbox arena keeps its previous length as a high-water mark;
        // stale envelopes are never read because every per-destination
        // region is rewritten by the routing pass before delivery. The
        // region table, however, must be zeroed: round 0 reads it before
        // any routing has happened.
        self.inbox_start.clear();
        self.inbox_start.resize(n + 1, 0);
        self.cursor.clear();
        self.cursor.resize(n, 0);
        self.audit = policy.records_audit();
        self.record_halt_rounds = policy.records_halts();
        self.transcript = Transcript::empty(P::OUTPUT_KIND, n, g.m());
    }

    /// Applies commit events (in node order — deterministic) for `round`.
    fn apply_events(&mut self, round: Round) {
        for chunk in &mut self.events {
            for (v, event) in chunk.drain(..) {
                match event {
                    Event::Node(out) => {
                        assert!(
                            !self.committed.get(v),
                            "node {v} committed twice (round {round}); outputs are final"
                        );
                        self.committed.set(v);
                        self.transcript.node_commit_round[v] = round;
                        self.transcript.node_output[v] = Some(out);
                    }
                    Event::Edge(e, out) => match &self.transcript.edge_output[e] {
                        None => {
                            self.transcript.edge_commit_round[e] = round;
                            self.transcript.edge_output[e] = Some(out);
                        }
                        Some(prev) => {
                            assert!(
                                *prev == out,
                                "edge {e} committed with conflicting labels \
                                     ({prev:?} vs {out:?}) — algorithm bug"
                            );
                        }
                    },
                }
            }
        }
    }

    /// Routes this round's outbox arena into next round's inbox arena;
    /// returns the maximum message size seen (0 when the CONGEST audit is
    /// disabled by the transcript policy — sizes are then never computed).
    ///
    /// Two passes over the senders (both in ascending id order): the first
    /// counts deliveries per destination and prefix-sums the counts into
    /// `inbox_start`; the second moves each message into its destination's
    /// region. Because senders are visited in id order, every region ends
    /// up sorted by sender id — the ordering the `Process` contract
    /// promises.
    fn route_messages(&mut self, g: &Graph) -> usize {
        let n = g.n();
        let audit = self.audit;
        let mut max_bits = 0usize;
        let mut total = 0usize;
        for v in &mut self.cursor {
            *v = 0;
        }
        for src in 0..n {
            if self.sent[src] == 0 {
                continue;
            }
            let nbrs = g.neighbors(src);
            let base = g.csr_offset(src);
            for (port, slot) in self.out_slots[base..base + nbrs.len()].iter().enumerate() {
                if let Some(msg) = slot {
                    if audit {
                        max_bits = max_bits.max(msg.size_bits());
                        self.transcript.messages_sent += 1;
                    }
                    let dst = nbrs[port].0;
                    if !self.halted[dst] {
                        self.cursor[dst] += 1;
                        total += 1;
                    }
                }
            }
            for (port, msg) in &self.out_spill[src] {
                if audit {
                    max_bits = max_bits.max(msg.size_bits());
                    self.transcript.messages_sent += 1;
                }
                let dst = nbrs[*port as usize].0;
                if !self.halted[dst] {
                    self.cursor[dst] += 1;
                    total += 1;
                }
            }
        }
        let mut acc = 0usize;
        for v in 0..n {
            let c = self.cursor[v];
            self.inbox_start[v] = acc;
            self.cursor[v] = acc;
            acc += c;
        }
        self.inbox_start[n] = acc;
        debug_assert_eq!(acc, total);
        if total > self.inbox.len() {
            // Grow the arena to the new high-water mark. The filler is a
            // clone of any pending message; every slot `< total` is
            // overwritten by the scatter pass below before it is read.
            let filler = self.first_pending_message(g).expect("total > 0");
            self.inbox.resize(
                total,
                Envelope {
                    src: 0,
                    port: 0,
                    msg: filler,
                },
            );
        }
        for src in 0..n {
            if self.sent[src] == 0 {
                continue;
            }
            self.sent[src] = 0;
            let nbrs = g.neighbors(src);
            let base = g.csr_offset(src);
            for (port, &(dst, _)) in nbrs.iter().enumerate() {
                if let Some(msg) = self.out_slots[base + port].take() {
                    if self.halted[dst] {
                        continue; // terminated nodes no longer receive
                    }
                    let at = self.cursor[dst];
                    self.cursor[dst] = at + 1;
                    self.inbox[at] = Envelope {
                        src,
                        port: g.rev_port(base + port),
                        msg,
                    };
                }
            }
            for (port, msg) in self.out_spill[src].drain(..) {
                let dst = nbrs[port as usize].0;
                if self.halted[dst] {
                    continue;
                }
                let at = self.cursor[dst];
                self.cursor[dst] = at + 1;
                self.inbox[at] = Envelope {
                    src,
                    port: g.rev_port(base + port as usize),
                    msg,
                };
            }
        }
        max_bits
    }

    /// A clone of any message sitting in the outbox (arena filler).
    fn first_pending_message(&self, g: &Graph) -> Option<P::Message> {
        for src in 0..g.n() {
            if self.sent[src] == 0 {
                continue;
            }
            if let Some(msg) = self.out_slots[g.arc_range(src)].iter().flatten().next() {
                return Some(msg.clone());
            }
            if let Some((_, msg)) = self.out_spill[src].first() {
                return Some(msg.clone());
            }
        }
        None
    }

    /// Records this round's halts (chunk order = node order) into the
    /// transcript (unless the policy drops the termination ledger), the
    /// columnar bitset, and the live counter.
    fn record_halts(&mut self, round: Round) {
        for chunk in &mut self.fresh_halts {
            for v in chunk.drain(..) {
                if self.record_halt_rounds {
                    debug_assert_eq!(self.transcript.node_halt_round[v], UNCOMMITTED);
                    self.transcript.node_halt_round[v] = round;
                }
                self.halted_bits.set(v);
                self.live -= 1;
            }
        }
    }

    fn all_halted(&self) -> bool {
        self.live == 0
    }
}

/// Activates one node for one round (or init when `round == 0`).
#[allow(clippy::too_many_arguments)]
fn activate<P: Process>(
    g: &Graph,
    cfg: &SimConfig,
    params: &P::Params,
    v: NodeId,
    round: Round,
    max_degree: usize,
    proc_slot: &mut Option<P>,
    rng: &mut Rng,
    halted: &mut bool,
    out_slots: &mut [Option<P::Message>],
    out_spill: &mut Vec<(u32, P::Message)>,
    sent: &mut u32,
    events: &mut EventBuf<P>,
    inbox: &[Envelope<P::Message>],
) {
    let mut ctx = Ctx {
        id: v,
        round,
        graph: g,
        knowledge: cfg.knowledge,
        max_degree,
        rng,
        out_slots,
        out_spill,
        sent,
        events,
        halted,
    };
    if round == 0 {
        *proc_slot = Some(P::init(params, &mut ctx));
    } else {
        proc_slot
            .as_mut()
            .expect("process exists after init")
            .round(&mut ctx, inbox);
    }
}

/// Runs the algorithm to completion on the sequential executor.
///
/// # Panics
///
/// Panics if the algorithm exceeds `cfg.max_rounds` without halting every
/// node, if a node commits its own output twice, or if the two endpoints
/// of an edge commit conflicting labels.
pub fn run_sequential<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    run_with_threads::<P>(g, params, cfg, 1, &mut RunState::empty())
}

/// Runs the algorithm on the chunked `std::thread::scope` executor.
///
/// Produces a transcript bit-identical to [`run_sequential`]; see the
/// module docs for why.
///
/// # Panics
///
/// Same conditions as [`run_sequential`].
pub fn run_parallel<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    run_with_threads::<P>(
        g,
        params,
        cfg,
        resolve_threads(cfg.threads),
        &mut RunState::empty(),
    )
}

/// Resolves a thread count with the `0 = all available cores` convention.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        threads
    }
    .max(1)
}

/// Below this node count [`run_parallel`] falls back to the sequential
/// loop — chunking overhead would dominate. Exported so tests asserting
/// that the parallel executor really ran can size their instances
/// against the actual threshold instead of a copied magic number.
pub const PARALLEL_MIN_NODES: usize = 256;

/// Runs `P` under `spec`, reusing the arenas stored in `ws`.
///
/// The first run of a process type (or the first after a CSR shape
/// change) allocates its arenas inside the workspace; subsequent runs
/// reuse them, paying only an O(n + m) reset instead of fresh
/// allocations. Transcripts are bit-identical to workspace-less runs —
/// the reset path is the only initialization path in the engine.
///
/// # Panics
///
/// Same conditions as [`run_sequential`].
pub fn run_spec_in<P>(
    g: &Graph,
    params: &P::Params,
    spec: &RunSpec,
    ws: &mut Workspace,
) -> Transcript<P::NodeOutput, P::EdgeOutput>
where
    P: Process + 'static,
    P::Message: 'static,
    P::NodeOutput: 'static,
    P::EdgeOutput: 'static,
{
    let cfg = spec.sim_config();
    let threads = match spec.exec {
        Exec::Sequential => 1,
        Exec::Parallel { threads } => resolve_threads(threads),
    };
    let shape = (g.n(), g.m(), g.degree_sum());
    if ws.shape != Some(shape) {
        ws.states.clear();
        ws.shape = Some(shape);
    }
    ws.runs += 1;
    let slot = ws.states.entry(TypeId::of::<P>());
    if let std::collections::hash_map::Entry::Occupied(_) = &slot {
        ws.reuses += 1;
    }
    let state = slot
        .or_insert_with(|| Box::new(RunState::<P>::empty()))
        .downcast_mut::<RunState<P>>()
        .expect("workspace slot keyed by process type");
    run_with_threads::<P>(g, params, &cfg, threads, state)
}

fn run_with_threads<P: Process>(
    g: &Graph,
    params: &P::Params,
    cfg: &SimConfig,
    threads: usize,
    state: &mut RunState<P>,
) -> Transcript<P::NodeOutput, P::EdgeOutput> {
    let n = g.n();
    // The chunking decision is fixed for the whole run: small instances
    // and one-thread configs use the sequential loop (chunk buffers: 1).
    let sequential = threads <= 1 || n < PARALLEL_MIN_NODES;
    let chunk = if sequential {
        n.max(1)
    } else {
        n.div_ceil(threads)
    };
    let chunks = if sequential { 1 } else { n.div_ceil(chunk) };
    state.reset(g, cfg.seed, chunks, cfg.transcript);
    let max_degree = g.max_degree();

    let mut round: Round = 0;
    loop {
        if sequential {
            step_sequential::<P>(g, cfg, params, round, max_degree, state);
        } else {
            step_parallel::<P>(g, cfg, params, round, max_degree, state, chunk);
        }
        state.apply_events(round);
        state.record_halts(round);
        let max_bits = state.route_messages(g);
        if state.audit {
            state.transcript.max_message_bits.push(max_bits);
        }
        if state.all_halted() {
            break;
        }
        round += 1;
        assert!(
            round <= cfg.max_rounds,
            "algorithm exceeded max_rounds={} without halting",
            cfg.max_rounds
        );
    }
    state.transcript.rounds = round;
    // Hand the ledger to the caller; the arenas stay behind for reuse.
    std::mem::replace(
        &mut state.transcript,
        Transcript::empty(P::OUTPUT_KIND, 0, 0),
    )
}

/// One round of activations on the sequential executor.
///
/// Skips halted nodes a 64-bit word at a time using the columnar halted
/// bitset (in sync with `halted` at round boundaries, which is when it is
/// read — a node only ever sets its *own* flag mid-round).
fn step_sequential<P: Process>(
    g: &Graph,
    cfg: &SimConfig,
    params: &P::Params,
    round: Round,
    max_degree: usize,
    state: &mut RunState<P>,
) {
    let n = g.n();
    let RunState {
        processes,
        rngs,
        halted,
        halted_bits,
        out_slots,
        out_spill,
        sent,
        events,
        fresh_halts,
        inbox,
        inbox_start,
        ..
    } = state;
    let events = &mut events[0];
    let fresh = &mut fresh_halts[0];
    let mut activate_one = |v: NodeId| {
        activate::<P>(
            g,
            cfg,
            params,
            v,
            round,
            max_degree,
            &mut processes[v],
            &mut rngs[v],
            &mut halted[v],
            &mut out_slots[g.arc_range(v)],
            &mut out_spill[v],
            &mut sent[v],
            events,
            &inbox[inbox_start[v]..inbox_start[v + 1]],
        );
        if halted[v] {
            fresh.push(v);
        }
    };
    if round == 0 {
        for v in 0..n {
            activate_one(v);
        }
        return;
    }
    for w in 0..halted_bits.word_count() {
        let word = halted_bits.word(w);
        if word == u64::MAX {
            continue; // 64 halted nodes skipped in one compare
        }
        let base = w * 64;
        let mut alive = !word;
        while alive != 0 {
            let v = base + alive.trailing_zeros() as usize;
            alive &= alive - 1;
            if v >= n {
                break;
            }
            activate_one(v);
        }
    }
}

/// One round of activations on the chunked parallel executor.
///
/// Contiguous node chunks get disjoint mutable windows of every arena
/// (the outbox window is split at CSR offsets, which align with node
/// boundaries); the shared inbox arena is read-only during the step.
/// Per-chunk event/halt buffers are filled in ascending node order, so
/// draining chunks in order reproduces the sequential event order.
#[allow(clippy::too_many_arguments)]
fn step_parallel<P: Process>(
    g: &Graph,
    cfg: &SimConfig,
    params: &P::Params,
    round: Round,
    max_degree: usize,
    state: &mut RunState<P>,
    chunk: usize,
) {
    let n = g.n();
    let inbox = &state.inbox;
    let inbox_start = &state.inbox_start;
    let mut procs_rest = &mut state.processes[..];
    let mut rngs_rest = &mut state.rngs[..];
    let mut halted_rest = &mut state.halted[..];
    let mut slots_rest = &mut state.out_slots[..];
    let mut spill_rest = &mut state.out_spill[..];
    let mut sent_rest = &mut state.sent[..];
    let mut events_rest = &mut state.events[..];
    let mut fresh_rest = &mut state.fresh_halts[..];
    std::thread::scope(|scope| {
        let mut base = 0usize;
        while base < n {
            let len = chunk.min(n - base);
            let arc_lo = g.csr_offset(base);
            let arc_hi = g.csr_offset(base + len);
            let (p, pr) = procs_rest.split_at_mut(len);
            procs_rest = pr;
            let (r, rr) = rngs_rest.split_at_mut(len);
            rngs_rest = rr;
            let (h, hr) = halted_rest.split_at_mut(len);
            halted_rest = hr;
            let (sl, slr) = slots_rest.split_at_mut(arc_hi - arc_lo);
            slots_rest = slr;
            let (sp, spr) = spill_rest.split_at_mut(len);
            spill_rest = spr;
            let (se, ser) = sent_rest.split_at_mut(len);
            sent_rest = ser;
            let (ev, evr) = events_rest.split_at_mut(1);
            events_rest = evr;
            let (fh, fhr) = fresh_rest.split_at_mut(1);
            fresh_rest = fhr;
            let events = &mut ev[0];
            let fresh = &mut fh[0];
            scope.spawn(move || {
                for i in 0..len {
                    let v = base + i;
                    if round > 0 && h[i] {
                        continue;
                    }
                    let lo = g.csr_offset(v) - arc_lo;
                    let hi = g.csr_offset(v + 1) - arc_lo;
                    activate::<P>(
                        g,
                        cfg,
                        params,
                        v,
                        round,
                        max_degree,
                        &mut p[i],
                        &mut r[i],
                        &mut h[i],
                        &mut sl[lo..hi],
                        &mut sp[i],
                        &mut se[i],
                        events,
                        &inbox[inbox_start[v]..inbox_start[v + 1]],
                    );
                    if h[i] {
                        fresh.push(v);
                    }
                }
            });
            base += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use localavg_graph::gen;

    /// Every node floods the maximum id it has seen for `radius` rounds,
    /// then commits it. Classic LOCAL warm-up; lets us test delivery,
    /// rounds, ports, and both executors.
    struct MaxFlood {
        best: u64,
        radius: usize,
    }

    impl Process for MaxFlood {
        type Message = u64;
        type NodeOutput = u64;
        type EdgeOutput = ();
        type Params = usize; // radius

        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(radius: &usize, ctx: &mut Ctx<'_, Self>) -> Self {
            ctx.broadcast(ctx.id() as u64);
            MaxFlood {
                best: ctx.id() as u64,
                radius: *radius,
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.best = self.best.max(env.msg);
            }
            if ctx.round() < self.radius {
                ctx.broadcast(self.best);
            } else {
                ctx.commit_node(self.best);
                ctx.halt();
            }
        }
    }

    const RADIUS: usize = 3;

    #[test]
    fn flood_reaches_radius() {
        let g = gen::path(8);
        let cfg = SimConfig::new(1);
        let t = run_sequential::<MaxFlood>(&g, &RADIUS, &cfg);
        // After 3 rounds of flooding, node 0 has seen ids up to distance 3.
        assert_eq!(t.node_output[0], Some(3));
        assert_eq!(t.node_output[4], Some(7));
        assert_eq!(t.rounds, 3);
        assert!(t.all_nodes_committed());
        assert!(t.is_complete());
        // Everyone committed at round 3 and halted at round 3.
        assert!(t.node_commit_round.iter().all(|&r| r == 3));
        assert!(t.node_halt_round.iter().all(|&r| r == 3));
    }

    #[test]
    fn congest_accounting() {
        let g = gen::cycle(6);
        let t = run_sequential::<MaxFlood>(&g, &RADIUS, &SimConfig::new(2));
        assert_eq!(t.peak_message_bits(), 64);
        // 6 nodes broadcast to 2 neighbors for rounds 0..=2 (round 3 commits).
        assert_eq!(t.messages_sent, 6 * 2 * 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::grid(8, 9);
        let cfg = SimConfig::new(7).with_threads(4);
        let a = run_sequential::<MaxFlood>(&g, &RADIUS, &cfg);
        let b = run_parallel::<MaxFlood>(&g, &RADIUS, &cfg);
        assert_eq!(a.node_output, b.node_output);
        assert_eq!(a.node_commit_round, b.node_commit_round);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    /// A randomized process: commits a coin flip at round 0. Used to verify
    /// per-node randomness is a function of (seed, id) only.
    struct CoinFlip;

    impl Process for CoinFlip {
        type Message = ();
        type NodeOutput = bool;
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            let flip = ctx.rng().chance(0.5);
            ctx.commit_node(flip);
            ctx.halt();
            CoinFlip
        }

        fn round(&mut self, _ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<()>]) {
            unreachable!("halted at init");
        }
    }

    #[test]
    fn randomness_is_seed_deterministic() {
        let g = gen::cycle(32);
        let a = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(5));
        let b = run_parallel::<CoinFlip>(&g, &(), &SimConfig::new(5).with_threads(3));
        let c = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(6));
        assert_eq!(a.node_output, b.node_output);
        assert_ne!(a.node_output, c.node_output);
        assert_eq!(a.rounds, 0, "0-round algorithm");
    }

    /// Edge-labelling process: each edge is committed by its lower-id
    /// endpoint with label = sum of endpoint ids; the higher endpoint
    /// commits the same label one round later (consistency check).
    struct EdgeLabel;

    #[derive(Debug, Clone, PartialEq)]
    struct NoMsg;
    impl MessageSize for NoMsg {
        fn size_bits(&self) -> usize {
            0
        }
    }

    impl Process for EdgeLabel {
        type Message = NoMsg;
        type NodeOutput = ();
        type EdgeOutput = u64;
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            for port in ctx.ports() {
                let u = ctx.neighbor_id(port);
                if ctx.id() < u {
                    let label = (ctx.id() + u) as u64;
                    ctx.commit_edge(port, label);
                }
            }
            EdgeLabel
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<NoMsg>]) {
            for port in ctx.ports() {
                let u = ctx.neighbor_id(port);
                if ctx.id() > u {
                    let label = (ctx.id() + u) as u64;
                    ctx.commit_edge(port, label);
                }
            }
            ctx.halt();
        }
    }

    #[test]
    fn edge_commits_record_earliest_round_and_agree() {
        let g = gen::path(4);
        let t = run_sequential::<EdgeLabel>(&g, &(), &SimConfig::new(1));
        assert!(t.all_edges_committed());
        // Lower endpoint committed at round 0; duplicate commit at round 1
        // must not move the recorded round.
        assert!(t.edge_commit_round.iter().all(|&r| r == 0));
        let labels = t.edge_labels();
        for (e, u, v) in g.edges() {
            assert_eq!(labels[e], (u + v) as u64);
        }
        assert_eq!(t.kind, OutputKind::EdgeLabels);
    }

    /// Conflicting edge labels must panic.
    struct BadEdgeLabel;

    impl Process for BadEdgeLabel {
        type Message = NoMsg;
        type NodeOutput = ();
        type EdgeOutput = u64;
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

        fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            for port in ctx.ports() {
                ctx.commit_edge(port, ctx.id() as u64); // endpoints disagree
            }
            ctx.halt();
            BadEdgeLabel
        }

        fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<NoMsg>]) {}
    }

    #[test]
    #[should_panic(expected = "conflicting labels")]
    fn conflicting_edge_commit_panics() {
        let g = gen::path(2);
        let _ = run_sequential::<BadEdgeLabel>(&g, &(), &SimConfig::new(1));
    }

    /// A process that never halts must trip the round cap.
    struct Forever;
    impl Process for Forever {
        type Message = ();
        type NodeOutput = ();
        type EdgeOutput = ();
        type Params = ();
        const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
        fn init(_: &(), _: &mut Ctx<'_, Self>) -> Self {
            Forever
        }
        fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {}
    }

    #[test]
    #[should_panic(expected = "max_rounds")]
    fn round_cap_panics() {
        let g = gen::path(3);
        let cfg = SimConfig::new(1).with_max_rounds(10);
        let _ = run_sequential::<Forever>(&g, &(), &cfg);
    }

    #[test]
    fn knowledge_gating() {
        struct NosyProcess;
        impl Process for NosyProcess {
            type Message = ();
            type NodeOutput = ();
            type EdgeOutput = ();
            type Params = ();
            const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
            fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
                let _ = ctx.neighbor_id(0); // should panic without knowledge
                NosyProcess
            }
            fn round(&mut self, _: &mut Ctx<'_, Self>, _: &[Envelope<()>]) {}
        }
        let g = gen::path(2);
        let cfg = SimConfig::new(1).with_knowledge(Knowledge {
            neighbor_ids: false,
            neighbor_degrees: false,
        });
        let result = std::panic::catch_unwind(|| {
            let _ = run_sequential::<NosyProcess>(&g, &(), &cfg);
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_graph_trivial_run() {
        let g = Graph::empty(0);
        let t = run_sequential::<CoinFlip>(&g, &(), &SimConfig::new(1));
        assert_eq!(t.rounds, 0);
        assert!(t.is_complete());
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::new(9)
            .with_max_rounds(50)
            .with_threads(2)
            .with_knowledge(Knowledge::default())
            .with_transcript(TranscriptPolicy::CompletionsOnly);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_rounds, 50);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.transcript, TranscriptPolicy::CompletionsOnly);
    }

    #[test]
    fn run_spec_builders_and_sim_config() {
        let spec = RunSpec::new(3)
            .with_seed(4)
            .with_exec(Exec::Parallel { threads: 2 })
            .with_max_rounds(99)
            .with_transcript(TranscriptPolicy::None)
            .with_knowledge(Knowledge::default());
        assert_eq!(spec.seed, 4);
        assert_eq!(spec.max_rounds, 99);
        let cfg = spec.sim_config();
        assert_eq!(cfg.seed, 4);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.max_rounds, 99);
        assert_eq!(cfg.transcript, TranscriptPolicy::None);
        assert_eq!(RunSpec::new(1).sim_config().threads, 1);
    }

    #[test]
    fn transcript_policy_drops_only_what_it_promises() {
        let g = gen::grid(6, 6);
        let full = RunSpec::new(5).run::<MaxFlood>(&g, &RADIUS);
        let completions = RunSpec::new(5)
            .with_transcript(TranscriptPolicy::CompletionsOnly)
            .run::<MaxFlood>(&g, &RADIUS);
        let none = RunSpec::new(5)
            .with_transcript(TranscriptPolicy::None)
            .run::<MaxFlood>(&g, &RADIUS);
        // Outputs and commit clocks survive every policy.
        for t in [&completions, &none] {
            assert_eq!(t.node_output, full.node_output);
            assert_eq!(t.node_commit_round, full.node_commit_round);
            assert_eq!(t.rounds, full.rounds);
            assert!(t.is_complete());
            // The CONGEST audit is gone below Full.
            assert!(t.max_message_bits.is_empty());
            assert_eq!(t.messages_sent, 0);
            assert_eq!(t.peak_message_bits(), 0);
        }
        assert!(full.messages_sent > 0);
        assert!(!full.max_message_bits.is_empty());
        // Halt clocks survive CompletionsOnly but not None.
        assert_eq!(completions.node_halt_round, full.node_halt_round);
        assert!(none.node_halt_round.iter().all(|&r| r == UNCOMMITTED));
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_runs() {
        let g = gen::grid(8, 9);
        let mut ws = Workspace::new();
        let spec = RunSpec::new(7);
        let first = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        let reused = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        let fresh = spec.run::<MaxFlood>(&g, &RADIUS);
        assert_eq!(ws.run_count(), 2);
        assert_eq!(ws.reuse_count(), 1);
        assert_eq!(first.node_output, fresh.node_output);
        assert_eq!(reused.node_output, fresh.node_output);
        assert_eq!(reused.node_commit_round, fresh.node_commit_round);
        assert_eq!(reused.node_halt_round, fresh.node_halt_round);
        assert_eq!(reused.max_message_bits, fresh.max_message_bits);
        assert_eq!(reused.messages_sent, fresh.messages_sent);
        // A different seed through the same arenas still matches fresh.
        let other_ws = spec.with_seed(9).run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
        let other = RunSpec::new(9).run::<MaxFlood>(&g, &RADIUS);
        assert_eq!(other_ws.node_output, other.node_output);
    }

    #[test]
    fn workspace_handles_shape_changes_and_many_process_types() {
        let small = gen::path(6);
        let big = gen::grid(7, 7);
        let mut ws = Workspace::new();
        let spec = RunSpec::new(2);
        let _ = spec.run_in::<MaxFlood>(&small, &RADIUS, &mut ws);
        let _ = spec.run_in::<CoinFlip>(&small, &(), &mut ws);
        assert_eq!(ws.arena_count(), 2);
        // Shape change flushes the stored arenas, then runs fine.
        let on_big = spec.run_in::<MaxFlood>(&big, &RADIUS, &mut ws);
        assert_eq!(ws.arena_count(), 1);
        assert_eq!(
            on_big.node_output,
            spec.run::<MaxFlood>(&big, &RADIUS).node_output
        );
        // Back to the small shape: flush again, still correct.
        let back = spec.run_in::<MaxFlood>(&small, &RADIUS, &mut ws);
        assert_eq!(
            back.node_output,
            spec.run::<MaxFlood>(&small, &RADIUS).node_output
        );
    }

    #[test]
    fn workspace_reuse_after_an_aborted_run_is_clean() {
        // A run that panics mid-round leaves messages pending in the
        // outbox arena. Reusing the workspace afterwards — for the same
        // process type, hence the same arena slot — must behave exactly
        // like a fresh run: stale sends must not be delivered (they
        // would spill behind the next run's own sends).
        use std::sync::atomic::{AtomicBool, Ordering};
        static POISON: AtomicBool = AtomicBool::new(false);

        /// Broadcasts in rounds 0 and 1; while `POISON` is set, node 5
        /// panics in round 1 *after* lower-id nodes already wrote their
        /// round-1 sends into the shared outbox arena.
        struct MidRoundPanic;
        impl Process for MidRoundPanic {
            type Message = u64;
            type NodeOutput = u64;
            type EdgeOutput = ();
            type Params = ();
            const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;
            fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
                ctx.broadcast(1);
                MidRoundPanic
            }
            fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
                if ctx.round() == 1 {
                    ctx.broadcast(2);
                    assert!(
                        !(POISON.load(Ordering::Relaxed) && ctx.id() == 5),
                        "poisoned node"
                    );
                } else {
                    ctx.commit_node(inbox.iter().map(|e| e.msg).sum());
                    ctx.halt();
                }
            }
        }

        let g = gen::grid(6, 6); // node 5 exists; sequential id order
        let mut ws = Workspace::new();
        let spec = RunSpec::new(4);
        POISON.store(true, Ordering::Relaxed);
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = spec.run_in::<MidRoundPanic>(&g, &(), &mut ws);
        }));
        assert!(aborted.is_err(), "the poisoned run must panic");
        POISON.store(false, Ordering::Relaxed);
        // Same process type through the abandoned arena: the pending
        // round-1 broadcasts of nodes 0..5 must be gone.
        let reused = spec.run_in::<MidRoundPanic>(&g, &(), &mut ws);
        let fresh = spec.run::<MidRoundPanic>(&g, &());
        assert_eq!(reused.node_output, fresh.node_output);
        assert_eq!(reused.messages_sent, fresh.messages_sent);
        assert_eq!(reused.max_message_bits, fresh.max_message_bits);
    }

    #[test]
    fn workspace_reuse_matches_fresh_across_executors_and_policies() {
        let g = gen::grid(17, 17); // big enough to really chunk
        assert!(g.n() >= PARALLEL_MIN_NODES);
        let mut ws = Workspace::new();
        for policy in [
            TranscriptPolicy::Full,
            TranscriptPolicy::CompletionsOnly,
            TranscriptPolicy::None,
        ] {
            for exec in [Exec::Sequential, Exec::Parallel { threads: 3 }] {
                let spec = RunSpec::new(11).with_exec(exec).with_transcript(policy);
                let reused = spec.run_in::<MaxFlood>(&g, &RADIUS, &mut ws);
                let fresh = spec.run::<MaxFlood>(&g, &RADIUS);
                assert_eq!(reused.node_output, fresh.node_output);
                assert_eq!(reused.node_commit_round, fresh.node_commit_round);
                assert_eq!(reused.node_halt_round, fresh.node_halt_round);
                assert_eq!(reused.max_message_bits, fresh.max_message_bits);
            }
        }
        assert_eq!(ws.reuse_count(), 5);
    }
}
