//! A persistent, epoch-synchronized worker pool for the round engine.
//!
//! The old parallel executor respawned `std::thread::scope` threads every
//! round; at n = 10⁵ and thousands of (mostly tiny, frontier-shrunken)
//! rounds, spawn/join cost dominated and `parallel/2` *lost* to the
//! sequential loop. A [`WorkerPool`] spawns its threads **once** — per
//! `execute`, or once per [`Workspace`](crate::workspace::Workspace) when
//! runs are batched (the `exp serve` result daemon's workers keep one
//! workspace, and therefore one pool, alive across every cell they
//! answer) — and hands out per-round work by bumping an epoch counter
//! under a mutex.
//!
//! # Epoch protocol and liveness
//!
//! One *epoch* = one chunked pass over the node array (the engine runs
//! three per round: step, audit, gather). [`WorkerPool::run`] publishes a
//! job (a borrowed closure plus a task count), bumps the epoch, and wakes
//! every worker; workers race on a shared atomic cursor for chunk
//! indices, run the closure on each, then report back. The barrier is
//! the `active` count: `run` blocks until every worker — including ones
//! past the thread `limit`, which only acknowledge — has decremented it.
//!
//! Liveness argument: (1) the epoch counter only ever increments, and a
//! worker waits only while `epoch == last_seen`, so a wake-up lost to a
//! spurious or missed notification is recovered at the next
//! `notify_all` — the predicate is level-triggered, not edge-triggered;
//! (2) the cursor only increases within an epoch, so every chunk is
//! claimed exactly once and a worker's grab loop terminates as soon as
//! `cursor >= tasks`; (3) a panicking worker still decrements `active`
//! (the panic is caught, stored, and re-raised on the driver), and it
//! forces the cursor to the end so healthy workers drain instantly —
//! therefore `run` can never wait on a worker that made no progress.
//! The pool stays usable after a panic: no lock is held across user
//! code, and poisoned mutexes are explicitly bypassed.
//!
//! # Safety
//!
//! The published job pointer is a lifetime-erased borrow of the caller's
//! closure. This is sound because `run` does not return until `active`
//! reaches 0, i.e. until no worker can still dereference the pointer,
//! and the pointer is cleared before `run` returns. The module is the
//! only place in the crate that needs `unsafe` for thread plumbing; the
//! engine's chunk passes carry their own safety argument.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One published pass: a lifetime-erased closure, how many tasks (chunk
/// indices) it spans, and how many workers may grab tasks this epoch.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    tasks: usize,
    limit: usize,
}

// SAFETY: the pointer crosses threads, but it is only dereferenced
// between the epoch bump and the worker's `active` decrement, and
// `WorkerPool::run` keeps the pointee alive (blocked on the barrier)
// for exactly that window.
unsafe impl Send for Job {}

struct Ctrl {
    /// Monotone epoch counter; a bump + non-`None` job means "new pass".
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    active: usize,
    shutdown: bool,
    /// First worker panic of the epoch (re-raised on the driver).
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Signaled on epoch bump and shutdown.
    work: Condvar,
    /// Signaled when `active` reaches 0.
    done: Condvar,
    /// Task cursor for the current epoch; workers `fetch_add` to claim.
    cursor: AtomicUsize,
}

/// Locks the control block, surviving poisoning: a worker panic is
/// already captured and re-raised deliberately, so a poisoned mutex
/// carries no extra information and must not wedge the pool.
fn lock(m: &Mutex<Ctrl>) -> MutexGuard<'_, Ctrl> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A persistent pool of worker threads executing chunked passes (see the
/// [module docs](self)).
///
/// The driver thread participates in every pass, so a pool of `w`
/// workers gives `w + 1`-way parallelism; `WorkerPool::new(0)` is a
/// valid degenerate pool that runs every pass inline.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool(workers={})", self.handles.len())
    }
}

impl WorkerPool {
    /// Spawns `workers` threads, parked until the first [`WorkerPool::run`].
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("localavg-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of resident worker threads (the driver is not counted).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)`, each exactly once, distributed
    /// over the driver plus at most `limit` workers; blocks until every
    /// task is done and every worker has quiesced.
    ///
    /// Must not be called reentrantly (the engine's driver loop is the
    /// only caller and runs passes strictly one after another).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that occurred inside `f`, after the
    /// barrier — the pool itself stays usable.
    pub fn run(&self, tasks: usize, limit: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || limit == 0 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        // SAFETY: pure lifetime erasure; see the `Job` safety comment —
        // this function keeps `f` alive past every dereference.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut c = lock(&self.shared.ctrl);
            debug_assert_eq!(c.active, 0, "WorkerPool::run is not reentrant");
            // The cursor store is ordered before the epoch bump by the
            // mutex release; workers read it only after locking.
            self.shared.cursor.store(0, Ordering::Relaxed);
            c.job = Some(Job {
                f: erased,
                tasks,
                limit,
            });
            c.active = self.handles.len();
            c.epoch = c.epoch.wrapping_add(1);
            self.shared.work.notify_all();
        }
        // The driver grabs chunks too — `threads` includes it.
        let mine = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            f(i);
        }));
        if mine.is_err() {
            // Let workers drain the remaining chunks instantly.
            self.shared.cursor.store(tasks, Ordering::Relaxed);
        }
        let theirs = {
            let mut c = lock(&self.shared.ctrl);
            while c.active > 0 {
                c = self
                    .shared
                    .done
                    .wait(c)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            c.job = None;
            c.panic.take()
        };
        if let Err(p) = mine {
            resume_unwind(p);
        }
        if let Some(p) = theirs {
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut c = lock(&self.shared.ctrl);
            c.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked outside `run` (impossible today) is
            // not worth crashing a Drop for.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut c = lock(&shared.ctrl);
            loop {
                if c.shutdown {
                    return;
                }
                if c.epoch != seen {
                    if let Some(job) = c.job {
                        seen = c.epoch;
                        break job;
                    }
                }
                c = shared.work.wait(c).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let result = if index < job.limit {
            // SAFETY: the driver is parked on the `done` barrier until
            // this worker decrements `active` below, so the closure
            // behind the pointer is still alive.
            let f = unsafe { &*job.f };
            catch_unwind(AssertUnwindSafe(|| loop {
                let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= job.tasks {
                    break;
                }
                f(i);
            }))
        } else {
            // Over-provisioned pool (a smaller `threads` request than a
            // previous run): acknowledge the epoch without grabbing work
            // so the barrier still closes.
            Ok(())
        };
        let mut c = lock(&shared.ctrl);
        if let Err(p) = result {
            // Park the cursor at the end so other grab loops terminate,
            // then surface the first panic to the driver.
            shared.cursor.store(job.tasks, Ordering::Relaxed);
            if c.panic.is_none() {
                c.panic = Some(p);
            }
        }
        c.active -= 1;
        if c.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..50 {
            pool.run(hits.len(), usize::MAX, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 50));
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run(10, usize::MAX, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn limit_zero_runs_inline_on_the_driver() {
        let pool = WorkerPool::new(2);
        let sum = AtomicU64::new(0);
        pool.run(10, 0, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn empty_task_set_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, usize::MAX, &|_| unreachable!("no tasks"));
    }

    #[test]
    fn worker_panic_is_reraised_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, usize::MAX, &|i| {
                assert!(i != 13, "task 13 exploded");
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the driver");
        // The pool is still fully functional after the panic.
        let hits: Vec<AtomicU64> = (0..31).map(|_| AtomicU64::new(0)).collect();
        pool.run(hits.len(), usize::MAX, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn repeated_panics_do_not_wedge_the_pool() {
        let pool = WorkerPool::new(1);
        for round in 0..5 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.run(8, usize::MAX, &|i| {
                    assert!(i % 3 != round % 3, "scheduled failure");
                });
            }));
            assert!(caught.is_err());
        }
        let sum = AtomicU64::new(0);
        pool.run(8, usize::MAX, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        pool.run(16, usize::MAX, &|_| {});
        drop(pool); // must not hang
    }
}
