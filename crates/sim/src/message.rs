//! Messages, envelopes, and CONGEST size accounting.

use localavg_graph::NodeId;

/// A received message, as seen by the receiving node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender's node id.
    pub src: NodeId,
    /// The *receiver's* port over which the message arrived.
    pub port: usize,
    /// The message payload.
    pub msg: M,
}

/// Size estimate (in bits) of a message payload, used to audit CONGEST
/// algorithms: the model of the paper's §2 limits messages to O(log n) bits.
///
/// Implementations need not be exact — they should be honest up to small
/// constants. The engine records the per-round maximum in
/// [`Transcript::max_message_bits`](crate::transcript::Transcript::max_message_bits).
///
/// # Example
///
/// ```
/// use localavg_sim::message::MessageSize;
/// assert_eq!(42u64.size_bits(), 64);
/// assert_eq!((1u32, true).size_bits(), 33);
/// assert_eq!(Some(7usize).size_bits(), 65);
/// assert_eq!(vec![1u16, 2, 3].size_bits(), 48);
/// ```
pub trait MessageSize {
    /// Estimated encoded size of `self` in bits.
    fn size_bits(&self) -> usize;
}

macro_rules! impl_size_prim {
    ($($t:ty => $bits:expr),* $(,)?) => {
        $(impl MessageSize for $t {
            fn size_bits(&self) -> usize { $bits }
        })*
    };
}

impl_size_prim!(
    u8 => 8, u16 => 16, u32 => 32, u64 => 64, usize => 64,
    i8 => 8, i16 => 16, i32 => 32, i64 => 64, isize => 64,
    bool => 1, f64 => 64, f32 => 32,
);

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        0
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::size_bits)
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_bits(&self) -> usize {
        self.iter().map(MessageSize::size_bits).sum()
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits() + self.2.size_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(0u8.size_bits(), 8);
        assert_eq!(0u64.size_bits(), 64);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(().size_bits(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!(Some(1u8).size_bits(), 9);
        assert_eq!(None::<u8>.size_bits(), 1);
        assert_eq!((1u8, 2u8, 3u8).size_bits(), 24);
        assert_eq!(vec![1u8; 5].size_bits(), 40);
    }

    #[test]
    fn envelope_fields() {
        let e = Envelope {
            src: 3,
            port: 1,
            msg: 99u32,
        };
        assert_eq!(e.src, 3);
        assert_eq!(e.port, 1);
        assert_eq!(e.msg, 99);
    }
}
