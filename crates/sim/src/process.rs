//! The [`Process`] trait implemented by distributed algorithms, and the
//! per-node execution context [`Ctx`].

use crate::message::{Envelope, MessageSize};
use crate::transcript::{OutputKind, Round};
use localavg_graph::rng::Rng;
use localavg_graph::{EdgeId, Graph, NodeId};

/// What a node knows at time 0, besides its own id, its degree, `n`, and Δ.
///
/// The paper's LOCAL model gives nodes unique O(log n)-bit ids; neighbor
/// ids/degrees are learnable in one round, so granting them initially only
/// shifts round counts by an additive constant. The default grants both
/// (and the experiments note this convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knowledge {
    /// Nodes know the ids of their neighbors (per port).
    pub neighbor_ids: bool,
    /// Nodes know the degrees of their neighbors (per port).
    pub neighbor_degrees: bool,
}

impl Default for Knowledge {
    fn default() -> Self {
        Knowledge {
            neighbor_ids: true,
            neighbor_degrees: true,
        }
    }
}

/// A distributed algorithm, instantiated once per node.
///
/// The engine calls [`Process::init`] at round 0 (a node may already send
/// and commit there) and [`Process::round`] once per subsequent round with
/// the messages that arrived. A node leaves the computation by calling
/// [`Ctx::halt`].
///
/// See the [crate-level example](crate) for a complete implementation.
pub trait Process: Sized + Send {
    /// Message payload exchanged over edges.
    type Message: Clone + Send + Sync + MessageSize;
    /// Per-node output label (use `()` for edge-labelling problems).
    type NodeOutput: Clone + Send;
    /// Per-edge output label (use `()` for node-labelling problems).
    type EdgeOutput: Clone + Send + PartialEq + std::fmt::Debug;
    /// Algorithm-wide parameters passed to every node's `init`.
    type Params: Sync + ?Sized;

    /// Which outputs this problem commits (drives Definition 1 accounting).
    const OUTPUT_KIND: OutputKind;

    /// Constructs the node's state at round 0. May send and commit.
    fn init(params: &Self::Params, ctx: &mut Ctx<'_, Self>) -> Self;

    /// Executes one round given the messages received this round.
    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<Self::Message>]);
}

/// Commit event emitted by a node during one activation.
#[derive(Debug, Clone)]
pub(crate) enum Event<NO, EO> {
    /// The node committed its own output.
    Node(NO),
    /// The node committed the label of an incident edge.
    Edge(EdgeId, EO),
}

/// A commit-event buffer: `(node, event)` pairs in the order they were
/// emitted. One buffer per executor chunk; entries within a buffer are in
/// ascending node order because each chunk activates its nodes in order.
pub(crate) type EventBuf<P> = Vec<(
    NodeId,
    Event<<P as Process>::NodeOutput, <P as Process>::EdgeOutput>,
)>;

/// Per-node execution context handed to [`Process::init`] / [`Process::round`].
///
/// All interaction with the engine — sending, committing, halting, and
/// reading local knowledge — goes through this type.
///
/// Sends land in the engine's flat per-run outbox arena: the node owns
/// one message slot per port (its slice of the CSR arc array, addressed
/// by `csr_offset(v) + port`), plus a rarely-used spill vector for the
/// occasional second message on the same port in one round.
pub struct Ctx<'a, P: Process> {
    pub(crate) id: NodeId,
    pub(crate) round: Round,
    pub(crate) graph: &'a Graph,
    pub(crate) knowledge: Knowledge,
    pub(crate) max_degree: usize,
    pub(crate) rng: &'a mut Rng,
    /// This node's arc slots of the run-wide outbox arena (length = degree).
    pub(crate) out_slots: &'a mut [Option<P::Message>],
    /// Overflow for a repeated send on an already-occupied port.
    pub(crate) out_spill: &'a mut Vec<(u32, P::Message)>,
    /// Messages written this round (lets routing skip silent nodes).
    pub(crate) sent: &'a mut u32,
    pub(crate) events: &'a mut EventBuf<P>,
    pub(crate) halted: &'a mut bool,
}

impl<'a, P: Process> Ctx<'a, P> {
    /// This node's id (`0..n`, also its unique identifier).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current round (0 during `init`).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of nodes in the graph (global knowledge, standard in LOCAL).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Maximum degree Δ of the graph (global knowledge).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }

    /// Iterator over this node's ports, `0..degree`.
    pub fn ports(&self) -> std::ops::Range<usize> {
        0..self.degree()
    }

    /// The id of the neighbor behind `port`.
    ///
    /// # Panics
    ///
    /// Panics if the run was configured without neighbor-id knowledge, or
    /// if `port >= degree`.
    pub fn neighbor_id(&self, port: usize) -> NodeId {
        assert!(
            self.knowledge.neighbor_ids,
            "neighbor ids are not part of the configured initial knowledge"
        );
        self.graph.neighbors(self.id)[port].0
    }

    /// The degree of the neighbor behind `port`.
    ///
    /// # Panics
    ///
    /// Panics if the run was configured without neighbor-degree knowledge.
    pub fn neighbor_degree(&self, port: usize) -> usize {
        assert!(
            self.knowledge.neighbor_degrees,
            "neighbor degrees are not part of the configured initial knowledge"
        );
        let (u, _) = self.graph.neighbors(self.id)[port];
        self.graph.degree(u)
    }

    /// The edge id of the edge behind `port` (useful for edge outputs).
    pub fn edge_id(&self, port: usize) -> EdgeId {
        self.graph.neighbors(self.id)[port].1
    }

    /// This node's private random stream (footnote 1 of the paper: a pure
    /// function of the master seed and the node id).
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Sends `msg` to the neighbor behind `port` (delivered next round).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    pub fn send(&mut self, port: usize, msg: P::Message) {
        *self.sent += 1;
        let slot = &mut self.out_slots[port];
        if slot.is_none() {
            *slot = Some(msg);
        } else {
            // Second message on the same port this round: rare (only the
            // orientation handshake does it), so it spills instead of
            // widening every slot. Delivery order stays chronological.
            self.out_spill.push((port as u32, msg));
        }
    }

    /// Sends `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: P::Message) {
        for port in self.ports() {
            self.send(port, msg.clone());
        }
    }

    /// Commits this node's output — the moment recorded as `T_v` for the
    /// node-averaged complexity (Definition 1).
    ///
    /// # Panics
    ///
    /// The engine panics if a node commits twice (outputs are final).
    pub fn commit_node(&mut self, out: P::NodeOutput) {
        self.events.push((self.id, Event::Node(out)));
    }

    /// Commits the label of the incident edge behind `port`.
    ///
    /// Both endpoints may commit the same edge; the engine records the
    /// earliest round and panics if the two committed labels disagree
    /// (that would be an algorithm bug).
    pub fn commit_edge(&mut self, port: usize, out: P::EdgeOutput) {
        let e = self.edge_id(port);
        self.events.push((self.id, Event::Edge(e, out)));
    }

    /// Leaves the computation: after this activation the node receives no
    /// further `round` calls and messages addressed to it are dropped.
    /// The halt round is recorded as the node's *termination time* (§2).
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}
