//! Error-path coverage for string-keyed algorithm parameters: every
//! [`ParamSpec`] in the registry gets an unknown-key case (asserting the
//! `suggest()`-style closest match) and an invalid-value case, so a new
//! parameter cannot land without validation. Parameterless algorithms
//! are pinned to the `NoParams` rejection.

use localavg::core::algo::{registry, ParamError};

#[test]
fn every_param_spec_rejects_an_invalid_value() {
    // Every declared parameter is numeric or an enum label, so a
    // non-numeric garbage token must fail per-key validation — and the
    // error must carry the algorithm, the key, the offending value, and
    // the expected range from the spec.
    for algo in registry().iter() {
        for spec in algo.param_specs() {
            let err = match algo.with_params(&[(spec.key, "not-a-value")]) {
                Err(e) => e,
                Ok(_) => panic!("{}:{} accepted garbage", algo.name(), spec.key),
            };
            match err {
                ParamError::InvalidValue {
                    algorithm,
                    key,
                    value,
                    expected,
                } => {
                    assert_eq!(algorithm, algo.name());
                    assert_eq!(key, spec.key);
                    assert_eq!(value, "not-a-value");
                    assert!(
                        !expected.is_empty(),
                        "{}:{} has no expectation text",
                        algo.name(),
                        spec.key
                    );
                    let msg = ParamError::InvalidValue {
                        algorithm,
                        key,
                        value,
                        expected,
                    }
                    .to_string();
                    assert!(msg.contains("invalid value"), "odd message: {msg}");
                    assert!(msg.contains(spec.key), "message must name the key: {msg}");
                }
                other => panic!("{}:{} gave {other:?}", algo.name(), spec.key),
            }
        }
    }
}

#[test]
fn every_param_spec_suggests_itself_for_a_typo() {
    // A one-character mangling of each declared key must be rejected as
    // unknown *with* the true key as the closest-match suggestion — the
    // same "did you mean" contract the algorithm registry gives.
    for algo in registry().iter() {
        for spec in algo.param_specs() {
            let typo = format!("{}z", spec.key);
            let err = match algo.with_params(&[(typo.as_str(), "1")]) {
                Err(e) => e,
                Ok(_) => panic!("{} accepted typo key `{typo}`", algo.name()),
            };
            match err {
                ParamError::UnknownKey {
                    algorithm,
                    key,
                    suggestion,
                    known,
                } => {
                    assert_eq!(algorithm, algo.name());
                    assert_eq!(key, typo);
                    assert_eq!(
                        suggestion,
                        Some(spec.key),
                        "{}: `{typo}` should suggest `{}`",
                        algo.name(),
                        spec.key
                    );
                    assert!(known.contains(&spec.key));
                    let msg = ParamError::UnknownKey {
                        algorithm,
                        key: typo.clone(),
                        suggestion,
                        known,
                    }
                    .to_string();
                    assert!(
                        msg.contains("did you mean"),
                        "{}: message lacks the suggestion: {msg}",
                        algo.name()
                    );
                }
                other => panic!("{}:{typo} gave {other:?}", algo.name()),
            }
        }
    }
}

#[test]
fn garbage_keys_get_no_misleading_suggestion() {
    for algo in registry().iter() {
        if algo.param_specs().is_empty() {
            continue;
        }
        match algo.with_params(&[("zzzzzzzzzz", "1")]) {
            Err(ParamError::UnknownKey { suggestion, .. }) => {
                assert_eq!(suggestion, None, "{}", algo.name());
            }
            Err(other) => panic!("{}: expected UnknownKey, got {other:?}", algo.name()),
            Ok(_) => panic!("{}: garbage key accepted", algo.name()),
        }
    }
}

#[test]
fn parameterless_algorithms_reject_every_key_as_no_params() {
    let mut covered = 0;
    for algo in registry().iter() {
        if !algo.param_specs().is_empty() {
            continue;
        }
        covered += 1;
        match algo.with_params(&[("anything", "1")]) {
            Err(ParamError::NoParams { algorithm, key }) => {
                assert_eq!(algorithm, algo.name());
                assert_eq!(key, "anything");
                let msg = ParamError::NoParams { algorithm, key }.to_string();
                assert!(msg.contains("takes no parameters"), "{msg}");
            }
            Err(other) => panic!("{}: expected NoParams, got {other:?}", algo.name()),
            Ok(_) => panic!("{}: unknown key accepted", algo.name()),
        }
    }
    // The registry currently has 5 parameterless algorithms; at least
    // one must exist for this test to mean anything.
    assert!(covered >= 1);
}

#[test]
fn ruling_det_mutually_exclusive_pairs_are_rejected_in_both_orders() {
    let det = registry().get("ruling/det").expect("registered");
    for pair in [
        [("iterations", "2"), ("variant", "log-delta")],
        [("variant", "log-log-n"), ("iterations", "3")],
    ] {
        let err = match det.with_params(&pair) {
            Err(e) => e,
            Ok(_) => panic!("exclusive pair accepted"),
        };
        assert!(
            matches!(err, ParamError::InvalidValue { .. }),
            "expected InvalidValue, got {err:?}"
        );
    }
    // Each half alone stays valid.
    assert!(det.with_params(&[("iterations", "2")]).is_ok());
    assert!(det.with_params(&[("variant", "log-log-n")]).is_ok());
}

#[test]
fn valid_overrides_round_trip_through_with_params() {
    // The positive companion: each declared key accepts a representative
    // in-range value (the same pools `exp fuzz` samples from).
    for (algo, key, value) in [
        ("mis/luby", "mark-factor", "0.25"),
        ("mis/degree-guided", "initial-desire", "0.3"),
        ("mis/degree-guided", "mass-threshold", "3.5"),
        ("ruling/det", "variant", "log-log-n"),
        ("ruling/det", "iterations", "2"),
        ("matching/luby", "mark-factor", "1.0"),
        ("orientation/rand", "contest-iterations", "2"),
        ("orientation/det", "r", "3"),
        ("orientation/det", "finish-threshold", "16"),
        ("orientation/det", "max-depth", "6"),
        ("coloring/trial", "extra-colors", "0"),
    ] {
        registry()
            .get(algo)
            .unwrap_or_else(|| panic!("missing {algo}"))
            .with_params(&[(key, value)])
            .unwrap_or_else(|e| panic!("{algo}:{key}={value} rejected: {e}"));
    }
}
