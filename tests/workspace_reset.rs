//! Regression: `Workspace` arenas are keyed on the CSR shape
//! `(n, m, Σdeg)`, which two very different graphs can share. Reuse must
//! mean *reset*, not *remember*: alternating runs over same-shaped,
//! non-isomorphic graphs through one workspace have to stay bit-identical
//! to cold starts. (A stale arena column — an old inbox region, a leaked
//! halt bit — shows up exactly here and nowhere in the single-graph
//! tests.)

use localavg::core::algo::{registry, AlgoRun, RunSpec, Workspace};
use localavg::graph::{gen, Graph};

/// Two non-isomorphic 3-regular graphs with the same shape key
/// (n = 8, m = 12, Σdeg = 24): the cube `Q_3` (connected) and the
/// disjoint union of two `K_4`s (two components).
fn same_shape_pair() -> (Graph, Graph) {
    let cube = gen::hypercube(3);
    let two_k4 = Graph::from_edges(
        8,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
        ],
    )
    .expect("two K4s");
    assert_eq!((cube.n(), cube.m()), (two_k4.n(), two_k4.m()));
    assert_eq!(cube.degree_sum(), two_k4.degree_sum());
    (cube, two_k4)
}

fn assert_identical(a: &AlgoRun, b: &AlgoRun, ctx: &str) {
    assert_eq!(a.solution, b.solution, "{ctx}: solutions diverge");
    assert_eq!(
        a.transcript.node_commit_round, b.transcript.node_commit_round,
        "{ctx}: node commit clocks diverge"
    );
    assert_eq!(
        a.transcript.edge_commit_round, b.transcript.edge_commit_round,
        "{ctx}: edge commit clocks diverge"
    );
    assert_eq!(
        a.transcript.node_halt_round, b.transcript.node_halt_round,
        "{ctx}: halt clocks diverge"
    );
    assert_eq!(
        a.transcript.rounds, b.transcript.rounds,
        "{ctx}: rounds diverge"
    );
    assert_eq!(
        a.transcript.messages_sent, b.transcript.messages_sent,
        "{ctx}: message audit diverges"
    );
}

#[test]
fn alternating_same_shape_graphs_stay_bit_identical_to_cold_starts() {
    let (cube, two_k4) = same_shape_pair();
    let spec = RunSpec::new(11);
    for algo in registry().iter() {
        // Both graphs are 3-regular, so even sinkless orientation runs
        // (and `*/tree-rc` never does: 3-regular graphs are cyclic).
        assert!(algo.problem().min_degree() <= 3);
        if algo.requires_tree() {
            continue;
        }
        let cold_cube = algo.execute(&cube, &spec);
        let cold_k4 = algo.execute(&two_k4, &spec);
        let mut ws = Workspace::new();
        for lap in 0..3 {
            let warm_cube = algo.execute_in(&cube, &spec, &mut ws);
            assert_identical(
                &warm_cube,
                &cold_cube,
                &format!("{} lap {lap} (cube)", algo.name()),
            );
            let warm_k4 = algo.execute_in(&two_k4, &spec, &mut ws);
            assert_identical(
                &warm_k4,
                &cold_k4,
                &format!("{} lap {lap} (2×K4)", algo.name()),
            );
        }
        // The point of the test: the shape key matched, so the arenas
        // really were reused across the two different graphs.
        assert!(
            ws.reuse_count() > 0 || ws.run_count() == 0,
            "{}: workspace never reused an arena (test lost its teeth)",
            algo.name()
        );
    }
}

#[test]
fn shape_change_flushes_and_still_matches_cold_starts() {
    // Sanity companion: a differently-shaped graph between two
    // same-shaped runs must not poison either.
    let (cube, two_k4) = same_shape_pair();
    let other = gen::grid(5, 5);
    let spec = RunSpec::new(4);
    let algo = registry().get("mis/luby").expect("registered");
    let cold_cube = algo.execute(&cube, &spec);
    let cold_other = algo.execute(&other, &spec);
    let cold_k4 = algo.execute(&two_k4, &spec);
    let mut ws = Workspace::new();
    assert_identical(&algo.execute_in(&cube, &spec, &mut ws), &cold_cube, "cube");
    assert_identical(
        &algo.execute_in(&other, &spec, &mut ws),
        &cold_other,
        "grid",
    );
    assert_identical(&algo.execute_in(&two_k4, &spec, &mut ws), &cold_k4, "2×K4");
    assert_identical(
        &algo.execute_in(&cube, &spec, &mut ws),
        &cold_cube,
        "cube again",
    );
}
