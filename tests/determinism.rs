//! Cross-executor and cross-run determinism: the same seed must produce
//! bit-identical transcripts sequentially, in parallel, and across calls.

use localavg::core::{matching, mis, ruling};
use localavg::graph::{gen, rng::Rng};

#[test]
fn luby_mis_is_seed_deterministic() {
    let mut rng = Rng::seed_from(3);
    let g = gen::random_regular(256, 6, &mut rng).unwrap();
    let a = mis::luby(&g, 42);
    let b = mis::luby(&g, 42);
    assert_eq!(a.in_set, b.in_set);
    assert_eq!(a.transcript.node_commit_round, b.transcript.node_commit_round);
    let c = mis::luby(&g, 43);
    assert_ne!(a.in_set, c.in_set, "different seeds should differ");
}

#[test]
fn ruling_set_is_seed_deterministic() {
    let mut rng = Rng::seed_from(4);
    let g = gen::gnp(200, 0.05, &mut rng);
    let a = ruling::two_two(&g, 9);
    let b = ruling::two_two(&g, 9);
    assert_eq!(a.in_set, b.in_set);
}

#[test]
fn matching_is_seed_deterministic() {
    let mut rng = Rng::seed_from(5);
    let g = gen::gnp(150, 0.08, &mut rng);
    let a = matching::luby(&g, 77);
    let b = matching::luby(&g, 77);
    assert_eq!(a.in_matching, b.in_matching);
    assert_eq!(a.transcript.edge_commit_round, b.transcript.edge_commit_round);
}

#[test]
fn deterministic_algorithms_are_input_deterministic() {
    let mut rng = Rng::seed_from(6);
    let g = gen::gnp(120, 0.07, &mut rng);
    assert_eq!(mis::greedy_by_id(&g).in_set, mis::greedy_by_id(&g).in_set);
    assert_eq!(
        matching::deterministic(&g).in_matching,
        matching::deterministic(&g).in_matching
    );
}
