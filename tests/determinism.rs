//! Cross-executor and cross-run determinism: the same seed must produce
//! bit-identical transcripts sequentially, in parallel, and across calls —
//! checked uniformly through the registry.

use localavg::core::algo::{registry, Exec, RunSpec};
use localavg::graph::{gen, rng::Rng};

#[test]
fn luby_mis_is_seed_deterministic() {
    let mut rng = Rng::seed_from(3);
    let g = gen::random_regular(256, 6, &mut rng).unwrap();
    let luby = registry().get("mis/luby").unwrap();
    let a = luby.execute(&g, &RunSpec::new(42));
    let b = luby.execute(&g, &RunSpec::new(42));
    assert_eq!(a.solution, b.solution);
    assert_eq!(
        a.transcript.node_commit_round,
        b.transcript.node_commit_round
    );
    let c = luby.execute(&g, &RunSpec::new(43));
    assert_ne!(a.solution, c.solution, "different seeds should differ");
}

#[test]
fn every_randomized_algorithm_is_seed_deterministic() {
    let mut rng = Rng::seed_from(4);
    let g = gen::random_regular(96, 4, &mut rng).unwrap();
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree()
            || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
        {
            continue;
        }
        let a = algo.execute(&g, &RunSpec::new(9));
        let b = algo.execute(&g, &RunSpec::new(9));
        assert_eq!(
            a.solution,
            b.solution,
            "{} is not reproducible",
            algo.name()
        );
        assert_eq!(
            a.transcript.node_commit_round,
            b.transcript.node_commit_round,
            "{} commit clocks differ",
            algo.name()
        );
        assert_eq!(
            a.transcript.edge_commit_round,
            b.transcript.edge_commit_round,
            "{} edge clocks differ",
            algo.name()
        );
    }
}

#[test]
fn parallel_and_sequential_executors_are_bit_identical() {
    // Every registry algorithm, on a random tree and a grid (instances big
    // enough that the parallel executor actually chunks), at 1/2/8 worker
    // threads: transcripts must match the sequential executor bit for bit
    // — outputs, commit clocks, halt clocks, and the CONGEST audit.
    for family in ["tree/random", "grid"] {
        let g = gen::registry()
            .get(family)
            .expect("registered family")
            .build(300, 17)
            .expect("instance");
        assert!(
            g.n() >= localavg::sim::engine::PARALLEL_MIN_NODES,
            "instance too small to exercise chunking"
        );
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree()
                || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
            {
                continue;
            }
            let seq = algo.execute(&g, &RunSpec::new(5));
            for threads in [1usize, 2, 8] {
                let par = algo.execute(&g, &RunSpec::new(5).with_exec(Exec::Parallel { threads }));
                let label = format!("{} on {family} with {threads} thread(s)", algo.name());
                assert_eq!(seq.solution, par.solution, "{label}: outputs differ");
                assert_eq!(
                    seq.transcript.node_commit_round, par.transcript.node_commit_round,
                    "{label}: node commit clocks differ"
                );
                assert_eq!(
                    seq.transcript.edge_commit_round, par.transcript.edge_commit_round,
                    "{label}: edge commit clocks differ"
                );
                assert_eq!(
                    seq.transcript.node_halt_round, par.transcript.node_halt_round,
                    "{label}: halt clocks differ"
                );
                assert_eq!(
                    seq.transcript.messages_sent, par.transcript.messages_sent,
                    "{label}: message counts differ"
                );
                assert_eq!(
                    seq.transcript.max_message_bits, par.transcript.max_message_bits,
                    "{label}: CONGEST audit differs"
                );
            }
        }
    }
}

#[test]
fn chunk_geometry_is_invisible_in_every_transcript() {
    // Scheduler-adversarial matrix: every registry algorithm, with the
    // chunk size forced to degenerate extremes — one node per chunk (every
    // pass crosses a chunk boundary between any two nodes), a tiny prime
    // (chunks straddle bitset words), one chunk per thread, and a single
    // chunk covering the instance — at 1/2/8 worker threads. The explicit
    // override forces the chunked executor even below its size cutoff, and
    // any scheduling sensitivity (event order, halt order, audit sums)
    // shows up as a transcript diff against the sequential baseline.
    let mut rng = Rng::seed_from(12);
    let g = gen::random_regular(90, 4, &mut rng).unwrap();
    let n = g.n();
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree()
            || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
        {
            continue;
        }
        let baseline = algo.execute(&g, &RunSpec::new(7));
        for threads in [1usize, 2, 8] {
            for chunk in [1, 3, n.div_ceil(threads), n] {
                let spec = RunSpec::new(7)
                    .with_exec(Exec::Parallel { threads })
                    .with_chunk_nodes(Some(chunk));
                let run = algo.execute(&g, &spec);
                let label = format!("{} at chunk={chunk} threads={threads}", algo.name());
                assert_eq!(baseline.solution, run.solution, "{label}: outputs differ");
                assert_eq!(
                    baseline.transcript, run.transcript,
                    "{label}: transcript differs"
                );
            }
        }
    }
}

#[test]
fn deterministic_algorithms_ignore_the_seed() {
    let mut rng = Rng::seed_from(6);
    let g = gen::gnp(120, 0.07, &mut rng);
    for algo in registry().iter() {
        if !algo.deterministic()
            || algo.problem().min_degree() > g.min_degree()
            || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
        {
            continue;
        }
        assert_eq!(
            algo.execute(&g, &RunSpec::new(1)).solution,
            algo.execute(&g, &RunSpec::new(999)).solution,
            "{} claims to ignore the seed",
            algo.name()
        );
    }
}
