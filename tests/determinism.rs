//! Cross-executor and cross-run determinism: the same seed must produce
//! bit-identical transcripts sequentially, in parallel, and across calls —
//! checked uniformly through the registry.

use localavg::core::algo::registry;
use localavg::graph::{gen, rng::Rng};

#[test]
fn luby_mis_is_seed_deterministic() {
    let mut rng = Rng::seed_from(3);
    let g = gen::random_regular(256, 6, &mut rng).unwrap();
    let luby = registry().get("mis/luby").unwrap();
    let a = luby.run(&g, 42);
    let b = luby.run(&g, 42);
    assert_eq!(a.solution, b.solution);
    assert_eq!(
        a.transcript.node_commit_round,
        b.transcript.node_commit_round
    );
    let c = luby.run(&g, 43);
    assert_ne!(a.solution, c.solution, "different seeds should differ");
}

#[test]
fn every_randomized_algorithm_is_seed_deterministic() {
    let mut rng = Rng::seed_from(4);
    let g = gen::random_regular(96, 4, &mut rng).unwrap();
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree() {
            continue;
        }
        let a = algo.run(&g, 9);
        let b = algo.run(&g, 9);
        assert_eq!(
            a.solution,
            b.solution,
            "{} is not reproducible",
            algo.name()
        );
        assert_eq!(
            a.transcript.node_commit_round,
            b.transcript.node_commit_round,
            "{} commit clocks differ",
            algo.name()
        );
        assert_eq!(
            a.transcript.edge_commit_round,
            b.transcript.edge_commit_round,
            "{} edge clocks differ",
            algo.name()
        );
    }
}

#[test]
fn deterministic_algorithms_ignore_the_seed() {
    let mut rng = Rng::seed_from(6);
    let g = gen::gnp(120, 0.07, &mut rng);
    for algo in registry().iter() {
        if !algo.deterministic() || algo.problem().min_degree() > g.min_degree() {
            continue;
        }
        assert_eq!(
            algo.run(&g, 1).solution,
            algo.run(&g, 999).solution,
            "{} claims to ignore the seed",
            algo.name()
        );
    }
}
