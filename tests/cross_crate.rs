//! Integration tests spanning the whole workspace: algorithms from
//! `localavg-core` running on graphs from `localavg-graph` and
//! `localavg-lowerbound`, with metrics cross-checked.

use localavg::core::metrics::{CompletionTimes, ComplexityReport, RunAggregate};
use localavg::core::orientation::DetOrientParams;
use localavg::core::ruling::DetRulingParams;
use localavg::core::{coloring, matching, mis, orientation, ruling};
use localavg::graph::{analysis, gen, rng::Rng};
use localavg::lowerbound::base_graph::{BaseGraph, LiftedGk};
use localavg::lowerbound::constructions::DoubledGk;

fn lifted(k: usize, beta: u64, q: usize, seed: u64) -> LiftedGk {
    let base = BaseGraph::build(k, beta, 4_000_000).expect("base graph");
    let mut rng = Rng::seed_from(seed);
    LiftedGk::build(base, q, &mut rng)
}

#[test]
fn every_algorithm_solves_the_lower_bound_graph() {
    let lg = lifted(1, 4, 2, 3);
    let g = lg.graph();

    let m = mis::luby(g, 1);
    assert!(analysis::is_maximal_independent_set(g, &m.in_set));

    let dg = mis::degree_guided(g, 1);
    assert!(analysis::is_maximal_independent_set(g, &dg.in_set));

    let rs = ruling::two_two(g, 1);
    assert!(analysis::is_ruling_set(g, &rs.in_set, 2, 2));

    let det_rs = ruling::deterministic(g, DetRulingParams::for_log_delta(g));
    assert!(analysis::is_ruling_set(g, &det_rs.in_set, 2, det_rs.beta));

    let mm = matching::luby(g, 1);
    assert!(analysis::is_maximal_matching(g, &mm.in_matching));

    let col = coloring::random_trial(g, 1);
    assert!(analysis::is_proper_coloring(g, &col.colors));
    assert!(col.colors.iter().all(|&c| c <= g.max_degree()));
}

#[test]
fn theorem2_beats_mis_on_the_lower_bound_family() {
    // The headline separation: on G̃_k the (2,2)-ruling set node-average
    // is (much) smaller than the MIS node-average once k >= 1.
    let lg = lifted(2, 4, 2, 5);
    let g = lg.graph();
    let mis_avg = {
        let run = mis::luby(g, 2);
        ComplexityReport::from_run(g, &run.transcript).node_averaged
    };
    let rs_avg = {
        let run = ruling::two_two(g, 2);
        ComplexityReport::from_run(g, &run.transcript).node_averaged
    };
    assert!(
        rs_avg < mis_avg,
        "(2,2)-RS node-avg {rs_avg} should beat MIS node-avg {mis_avg}"
    );
}

#[test]
fn s0_stalls_under_mis_but_not_under_ruling_set() {
    let k = 1;
    let lg = lifted(k, 4, 4, 7);
    let g = lg.graph();
    let s0 = lg.s0();

    let run = mis::luby(g, 11);
    let undecided_frac = s0
        .iter()
        .filter(|&&v| run.transcript.node_commit_round[v] > 3 * k)
        .count() as f64
        / s0.len() as f64;
    assert!(
        undecided_frac > 0.3,
        "a large fraction of S(c0) must stall beyond round k: {undecided_frac}"
    );
}

#[test]
fn doubled_construction_runs_matching() {
    // β must be large relative to k for S(c0) to dominate (the paper takes
    // β = Ω(k² log k)); then at least half of S(c0) can only be matched
    // through the cross perfect matching.
    let lg = lifted(1, 8, 1, 9);
    let d = DoubledGk::build(&lg);
    let run = matching::luby(&d.graph, 3);
    assert!(analysis::is_maximal_matching(&d.graph, &run.in_matching));
    assert!(
        d.cross_fraction(&run.in_matching) > 0.2,
        "cross fraction {}",
        d.cross_fraction(&run.in_matching)
    );
}

#[test]
fn orientation_on_lower_bound_graph() {
    // G̃_k has minimum degree >= 3 (every cluster label is at least 2β^0).
    let lg = lifted(1, 4, 2, 13);
    let g = lg.graph();
    assert!(g.min_degree() >= 3);
    let run = orientation::randomized(g, 3);
    assert!(analysis::is_sinkless_orientation(g, &run.orientation));
    let run2 = orientation::deterministic(g, DetOrientParams::default());
    assert!(analysis::is_sinkless_orientation(g, &run2.orientation));
}

#[test]
fn appendix_a_chain_on_real_runs() {
    let mut rng = Rng::seed_from(17);
    let g = gen::random_regular(256, 4, &mut rng).unwrap();
    let runs: Vec<_> = (0..8u64).map(|s| mis::luby(&g, s)).collect();
    let times: Vec<CompletionTimes> = runs
        .iter()
        .map(|r| CompletionTimes::from_transcript(&g, &r.transcript))
        .collect();
    let rounds: Vec<usize> = runs.iter().map(|r| r.worst_case()).collect();
    let agg = RunAggregate::from_times(&times, &rounds);
    assert!(agg.inequality_chain_holds());
    assert!(agg.node_averaged > 0.0);
}

#[test]
fn congest_audit_across_algorithms() {
    // Theorems 2-5 are CONGEST algorithms: O(log n) bits per message.
    let mut rng = Rng::seed_from(23);
    let g = gen::random_regular(128, 6, &mut rng).unwrap();
    let bits_cap = 192; // generous O(log n) allowance
    assert!(mis::luby(&g, 1).transcript.peak_message_bits() <= bits_cap);
    assert!(ruling::two_two(&g, 1).transcript.peak_message_bits() <= bits_cap);
    assert!(matching::luby(&g, 1).transcript.peak_message_bits() <= bits_cap);
    assert!(matching::deterministic(&g).transcript.peak_message_bits() <= bits_cap);
    assert!(
        ruling::deterministic(&g, DetRulingParams::for_log_delta(&g))
            .transcript
            .peak_message_bits()
            <= bits_cap
    );
}

#[test]
fn def1_edge_average_dominates_one_endpoint_convention() {
    let lg = lifted(1, 4, 2, 29);
    let g = lg.graph();
    let run = mis::luby(g, 5);
    let rep = ComplexityReport::from_run(g, &run.transcript);
    assert!(rep.edge_averaged_one_endpoint <= rep.edge_averaged + 1e-9);
    assert!(rep.node_averaged <= rep.rounds as f64 + 1e-9);
}
