//! Integration tests spanning the whole workspace: algorithms dispatched
//! through the unified registry running on graphs from `localavg-graph`
//! and `localavg-lowerbound`, with metrics cross-checked on the shared
//! `AlgoRun` result type.

use localavg::core::algo::{
    registry, AlgoRun, Algorithm, DetRulingSpec, RulingDet, RunSpec, Solution,
};
use localavg::core::metrics::{CompletionTimes, RunAggregate};
use localavg::graph::{gen, rng::Rng};
use localavg::lowerbound::base_graph::{BaseGraph, LiftedGk};
use localavg::lowerbound::constructions::DoubledGk;

fn lifted(k: usize, beta: u64, q: usize, seed: u64) -> LiftedGk {
    let base = BaseGraph::build(k, beta, 4_000_000).expect("base graph");
    let mut rng = Rng::seed_from(seed);
    LiftedGk::build(base, q, &mut rng)
}

fn run(name: &str, g: &localavg::graph::Graph, seed: u64) -> AlgoRun {
    let r = registry()
        .get(name)
        .unwrap_or_else(|| panic!("{name} not registered"))
        .execute(g, &RunSpec::new(seed));
    r.verify(g).unwrap_or_else(|e| panic!("{name}: {e}"));
    r
}

#[test]
fn every_algorithm_solves_the_lower_bound_graph() {
    let lg = lifted(1, 4, 2, 3);
    let g = lg.graph();
    // G̃_k has minimum degree >= 3, so even sinkless orientation is in
    // scope: the whole registry must verify.
    assert!(g.min_degree() >= 3);
    for algo in registry().iter() {
        if algo.requires_tree() {
            // The lifted lower-bound graph is 3-regular, hence cyclic.
            continue;
        }
        let r = algo.execute(g, &RunSpec::new(1));
        r.verify(g)
            .unwrap_or_else(|e| panic!("{} failed on G̃_1: {e}", algo.name()));
        assert_eq!(r.algorithm, algo.name());
    }
}

#[test]
fn trial_coloring_respects_the_delta_plus_one_palette() {
    // verify() only checks properness (coloring/linial legitimately uses
    // O(Δ² log² Δ) colors); the §1.2 (Δ+1) bound is specific to the
    // random-trial algorithm and is asserted here.
    let lg = lifted(1, 4, 2, 3);
    let g = lg.graph();
    let r = run("coloring/trial", g, 1);
    let colors = r.solution.colors().expect("coloring output");
    assert!(
        colors.iter().all(|&c| c <= g.max_degree()),
        "random trial must stay within the Δ+1 palette"
    );
}

#[test]
fn theorem2_beats_mis_on_the_lower_bound_family() {
    // The headline separation: on G̃_k the (2,2)-ruling set node-average
    // is (much) smaller than the MIS node-average once k >= 1.
    let lg = lifted(2, 4, 2, 5);
    let g = lg.graph();
    let mis_avg = run("mis/luby", g, 2).report(g).node_averaged;
    let rs_avg = run("ruling/two-two", g, 2).report(g).node_averaged;
    assert!(
        rs_avg < mis_avg,
        "(2,2)-RS node-avg {rs_avg} should beat MIS node-avg {mis_avg}"
    );
}

#[test]
fn s0_stalls_under_mis_but_not_under_ruling_set() {
    let k = 1;
    let lg = lifted(k, 4, 4, 7);
    let g = lg.graph();
    let s0 = lg.s0();

    let r = run("mis/luby", g, 11);
    let undecided_frac = s0
        .iter()
        .filter(|&&v| r.transcript.node_commit_round[v] > 3 * k)
        .count() as f64
        / s0.len() as f64;
    assert!(
        undecided_frac > 0.3,
        "a large fraction of S(c0) must stall beyond round k: {undecided_frac}"
    );
}

#[test]
fn doubled_construction_runs_matching() {
    // β must be large relative to k for S(c0) to dominate (the paper takes
    // β = Ω(k² log k)); then at least half of S(c0) can only be matched
    // through the cross perfect matching.
    let lg = lifted(1, 8, 1, 9);
    let d = DoubledGk::build(&lg);
    let r = run("matching/luby", &d.graph, 3);
    let in_matching = r.solution.matching().expect("matching output");
    assert!(
        d.cross_fraction(in_matching) > 0.2,
        "cross fraction {}",
        d.cross_fraction(in_matching)
    );
}

#[test]
fn orientation_on_lower_bound_graph() {
    // G̃_k has minimum degree >= 3 (every cluster label is at least 2β^0).
    let lg = lifted(1, 4, 2, 13);
    let g = lg.graph();
    assert!(g.min_degree() >= 3);
    run("orientation/rand", g, 3);
    run("orientation/det", g, 0);
}

#[test]
fn ruling_det_specs_resolve_per_graph() {
    let mut rng = Rng::seed_from(19);
    let g = gen::random_regular(128, 4, &mut rng).unwrap();
    for spec in [DetRulingSpec::LogDelta, DetRulingSpec::LogLogN] {
        let r = RulingDet.execute_with(&g, &RunSpec::new(0), &spec);
        r.verify(&g).expect("valid ruling set");
        match r.solution {
            Solution::RulingSet { beta, .. } => assert!(beta >= 3),
            ref other => panic!("wrong solution kind: {other:?}"),
        }
    }
}

#[test]
fn appendix_a_chain_on_real_runs() {
    let mut rng = Rng::seed_from(17);
    let g = gen::random_regular(256, 4, &mut rng).unwrap();
    let runs: Vec<AlgoRun> = (0..8u64).map(|s| run("mis/luby", &g, s)).collect();
    let times: Vec<CompletionTimes> = runs.iter().map(|r| r.completion_times(&g)).collect();
    let rounds: Vec<usize> = runs.iter().map(|r| r.worst_case()).collect();
    let agg = RunAggregate::from_times(&times, &rounds);
    assert!(agg.inequality_chain_holds());
    assert!(agg.node_averaged > 0.0);
}

#[test]
fn congest_audit_across_algorithms() {
    // Theorems 2-5 are CONGEST algorithms: O(log n) bits per message.
    let mut rng = Rng::seed_from(23);
    let g = gen::random_regular(128, 6, &mut rng).unwrap();
    let bits_cap = 192; // generous O(log n) allowance
    for name in [
        "mis/luby",
        "ruling/two-two",
        "ruling/det",
        "matching/luby",
        "matching/det",
    ] {
        let r = run(name, &g, 1);
        let peak = r
            .transcript
            .peak_message_bits()
            .expect("full-policy run is audited");
        assert!(
            peak <= bits_cap,
            "{name} exceeded the CONGEST budget: {peak} bits"
        );
    }
}

#[test]
fn def1_edge_average_dominates_one_endpoint_convention() {
    let lg = lifted(1, 4, 2, 29);
    let g = lg.graph();
    let rep = run("mis/luby", g, 5).report(g);
    assert!(rep.edge_averaged_one_endpoint <= rep.edge_averaged + 1e-9);
    assert!(rep.node_averaged <= rep.rounds as f64 + 1e-9);
}
