//! Registry integration test (the unified-API acceptance check): every
//! registered algorithm runs on a small random-regular graph and a path,
//! its output verifies, and the Appendix A inequality chain holds on the
//! aggregated reports.

use localavg::core::algo::{registry, AlgoRun, Problem, RunSpec};
use localavg::core::metrics::{CompletionTimes, RunAggregate};
use localavg::graph::{gen, rng::Rng, Graph};

/// Runs `algo` for several seeds and checks the Appendix A chain
/// `AVG_V ≤ AVG^w_V ≤ EXP_V ≤ E[WORST]` on the aggregate.
fn check_inequality_chain(g: &Graph, runs: &[AlgoRun]) {
    let times: Vec<CompletionTimes> = runs.iter().map(|r| r.completion_times(g)).collect();
    let rounds: Vec<usize> = runs.iter().map(|r| r.worst_case()).collect();
    let agg = RunAggregate::from_times(&times, &rounds);
    assert!(
        agg.inequality_chain_holds(),
        "inequality chain violated: AVG {} / EXP {} / WORST {}",
        agg.node_averaged,
        agg.node_expected,
        agg.worst_case
    );
}

#[test]
fn every_registered_algorithm_runs_on_a_regular_graph() {
    // d = 4 ≥ 3 keeps every problem's domain (incl. sinkless orientation).
    let mut rng = Rng::seed_from(0xBEEF);
    let g = gen::random_regular(64, 4, &mut rng).expect("4-regular graph");
    assert!(!registry().is_empty());
    for algo in registry().iter() {
        assert!(algo.problem().min_degree() <= g.min_degree());
        if algo.requires_tree() {
            // `*/tree-rc` is forest-only; the path test below covers it.
            continue;
        }
        let runs: Vec<AlgoRun> = (0..4u64)
            .map(|s| algo.execute(&g, &RunSpec::new(s + 1)))
            .collect();
        for r in &runs {
            r.verify(&g)
                .unwrap_or_else(|e| panic!("{} invalid on the regular graph: {e}", algo.name()));
            assert_eq!(r.problem(), algo.problem());
            assert_eq!(r.algorithm, algo.name());
        }
        check_inequality_chain(&g, &runs);
    }
}

#[test]
fn every_registered_algorithm_runs_on_a_path() {
    // A path has min degree 1: every algorithm except sinkless
    // orientation (domain: min degree 3) must solve it.
    let g = gen::path(24);
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree() {
            assert_eq!(
                algo.problem(),
                Problem::SinklessOrientation,
                "only sinkless orientation may skip the path"
            );
            continue;
        }
        let runs: Vec<AlgoRun> = (0..4u64)
            .map(|s| algo.execute(&g, &RunSpec::new(s + 1)))
            .collect();
        for r in &runs {
            r.verify(&g)
                .unwrap_or_else(|e| panic!("{} invalid on the path: {e}", algo.name()));
        }
        check_inequality_chain(&g, &runs);
    }
}

#[test]
fn registry_covers_all_five_families() {
    let problems: Vec<Problem> = registry().iter().map(|a| a.problem()).collect();
    for p in [
        Problem::Mis,
        Problem::RulingSet,
        Problem::MaximalMatching,
        Problem::SinklessOrientation,
        Problem::Coloring,
    ] {
        assert!(problems.contains(&p), "no registered algorithm for {p}");
    }
}

#[test]
fn lookup_and_suggestions() {
    assert!(registry().get("mis/luby").is_some());
    assert!(registry().get("no/such-algo").is_none());
    let hint = registry().suggest("mis/lubi").expect("nonempty registry");
    assert_eq!(hint, "mis/luby");
}
