//! Property-style tests over the whole stack, driven by a hand-rolled
//! deterministic case generator (the container has no proptest): algorithm
//! outputs are valid on arbitrary random graphs, metrics obey their
//! defining inequalities, and structural transforms preserve invariants.

use localavg::core::algo::{registry, Problem, RunSpec};
use localavg::core::matching;
use localavg::graph::rng::Rng;
use localavg::graph::{analysis, gen, lift, transform, Graph, GraphBuilder};

/// Deterministic stream of random G(n, p) cases with n < `max_n`.
fn cases(count: usize, max_n: usize, salt: u64) -> Vec<(Graph, u64)> {
    let mut rng = Rng::seed_from(0xCA5E5 ^ salt);
    (0..count)
        .map(|_| {
            let n = 2 + (rng.next_u64() as usize) % (max_n - 2);
            let p = (rng.next_u64() % 1000) as f64 / 1000.0 * 0.3;
            let g = gen::gnp(n, p, &mut rng);
            (g, rng.next_u64() % 100)
        })
        .collect()
}

#[test]
fn every_node_and_edge_problem_is_valid_on_random_graphs() {
    // The registry-wide generalization of the old per-family properties:
    // every algorithm whose domain admits the instance must verify.
    for (g, seed) in cases(12, 64, 1) {
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree() {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(seed));
            run.verify(&g)
                .unwrap_or_else(|e| panic!("{} invalid on n={}: {e}", algo.name(), g.n()));
        }
    }
}

#[test]
fn orientation_valid_on_random_cubic_graphs() {
    // Sinkless orientation's domain (min degree 3) rarely appears in the
    // G(n,p) stream above; cover it with regular graphs explicitly.
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from(seed + 400);
        let g = gen::random_regular(48, 3, &mut rng).expect("cubic graph");
        for algo in registry().iter() {
            if algo.problem() != Problem::SinklessOrientation {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(seed));
            run.verify(&g)
                .unwrap_or_else(|e| panic!("{} invalid at seed {seed}: {e}", algo.name()));
        }
    }
}

#[test]
fn fractional_matching_always_feasible() {
    for (g, _) in cases(12, 64, 2) {
        let f = matching::fractional_matching(&g);
        assert!(matching::fractional_is_valid(&g, &f), "n={}", g.n());
    }
}

#[test]
fn metrics_inequalities() {
    let luby = registry().get("mis/luby").expect("registered");
    for (g, seed) in cases(12, 64, 3) {
        let rep = luby.execute(&g, &RunSpec::new(seed)).report(&g);
        assert!(rep.edge_averaged_one_endpoint <= rep.edge_averaged + 1e-9);
        assert!(rep.node_averaged <= rep.node_worst as f64 + 1e-9);
        assert!(rep.node_worst <= rep.rounds);
    }
}

#[test]
fn line_graph_size_formula() {
    for (g, _) in cases(10, 40, 4) {
        let l = transform::line_graph(&g);
        assert_eq!(l.n(), g.m());
        let expect: usize = g.degrees().map(|d| d * (d.saturating_sub(1)) / 2).sum();
        assert_eq!(l.m(), expect);
    }
}

#[test]
fn matching_is_mis_on_line_graph() {
    // §1.1: a maximal matching of G is an MIS of L(G).
    let luby = registry().get("matching/luby").expect("registered");
    for (g, seed) in cases(10, 40, 5) {
        let run = luby.execute(&g, &RunSpec::new(seed));
        let in_matching = run.solution.matching().expect("matching output");
        let l = transform::line_graph(&g);
        assert!(analysis::is_maximal_independent_set(&l, in_matching));
    }
}

#[test]
fn lifts_preserve_degree_sequences() {
    for (i, (g, seed)) in cases(10, 32, 6).into_iter().enumerate() {
        let q = 1 + i % 4;
        let mut rng = Rng::seed_from(seed);
        let lifted = lift::lift(&g, q, &mut rng);
        assert_eq!(lifted.graph.n(), g.n() * q);
        assert_eq!(lifted.graph.m(), g.m() * q);
        for x in lifted.graph.nodes() {
            assert_eq!(lifted.graph.degree(x), g.degree(lifted.project(x)));
        }
    }
}

#[test]
fn induced_subgraph_degrees_bounded() {
    for (g, mask_seed) in cases(10, 48, 7) {
        let mut rng = Rng::seed_from(mask_seed);
        let keep: Vec<bool> = g.nodes().map(|_| rng.chance(0.6)).collect();
        let (sub, new_to_old, _) = transform::induced_subgraph(&g, &keep);
        for v in sub.nodes() {
            assert!(sub.degree(v) <= g.degree(new_to_old[v]));
        }
    }
}

#[test]
fn csr_neighbors_equal_insertion_order_adjacency() {
    // Property: on arbitrary random edge sets, the frozen CSR rows must
    // equal the per-node adjacency a reference Vec<Vec<_>> accumulates in
    // insertion order — port numbering is a pure function of the edge
    // sequence, not of the CSR packing. Also cross-checks the flat
    // edge-port and reverse-port tables against the rows.
    let mut rng = Rng::seed_from(0xC5A0);
    for case in 0..25 {
        let n = 2 + (rng.next_u64() as usize) % 60;
        let mut b = GraphBuilder::new(n);
        let mut reference: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for _ in 0..(rng.next_u64() as usize) % (3 * n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u != v && b.try_add(u, v) {
                let e = b.m() - 1;
                reference[u].push((v, e));
                reference[v].push((u, e));
            }
        }
        let g = b.build();
        assert_eq!(g.n(), n);
        for v in g.nodes() {
            assert_eq!(
                g.neighbors(v),
                &reference[v][..],
                "case {case}: node {v} row diverges from insertion order"
            );
        }
        for (e, u, v) in g.edges() {
            let (pu, pv) = g.edge_ports(e);
            assert_eq!(g.neighbors(u)[pu], (v, e), "case {case}: edge-port at u");
            assert_eq!(g.neighbors(v)[pv], (u, e), "case {case}: edge-port at v");
        }
        for v in g.nodes() {
            for (port, &(u, e)) in g.neighbors(v).iter().enumerate() {
                let rev = g.rev_port(g.csr_offset(v) + port);
                assert_eq!(
                    g.neighbors(u)[rev],
                    (v, e),
                    "case {case}: reverse port round-trip"
                );
            }
        }
    }
}

#[test]
fn power_graph_contains_original() {
    for (i, (g, _)) in cases(10, 32, 8).into_iter().enumerate() {
        let k = 1 + i % 3;
        let p = transform::power_graph(&g, k);
        for (_, u, v) in g.edges() {
            assert!(p.has_edge(u, v));
        }
    }
}
