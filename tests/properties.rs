//! Property-style tests over the whole stack, driven by a hand-rolled
//! deterministic case generator (the container has no proptest): algorithm
//! outputs are valid on arbitrary random graphs, metrics obey their
//! defining inequalities, and structural transforms preserve invariants.

use localavg::core::algo::{registry, Problem, RunSpec};
use localavg::core::matching;
use localavg::graph::rng::Rng;
use localavg::graph::{analysis, gen, lift, transform, Graph, GraphBuilder};

/// Deterministic stream of random G(n, p) cases with n < `max_n`.
fn cases(count: usize, max_n: usize, salt: u64) -> Vec<(Graph, u64)> {
    let mut rng = Rng::seed_from(0xCA5E5 ^ salt);
    (0..count)
        .map(|_| {
            let n = 2 + (rng.next_u64() as usize) % (max_n - 2);
            let p = (rng.next_u64() % 1000) as f64 / 1000.0 * 0.3;
            let g = gen::gnp(n, p, &mut rng);
            (g, rng.next_u64() % 100)
        })
        .collect()
}

#[test]
fn every_node_and_edge_problem_is_valid_on_random_graphs() {
    // The registry-wide generalization of the old per-family properties:
    // every algorithm whose domain admits the instance must verify.
    for (g, seed) in cases(12, 64, 1) {
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree()
                || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
            {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(seed));
            run.verify(&g)
                .unwrap_or_else(|e| panic!("{} invalid on n={}: {e}", algo.name(), g.n()));
        }
    }
}

#[test]
fn orientation_valid_on_random_cubic_graphs() {
    // Sinkless orientation's domain (min degree 3) rarely appears in the
    // G(n,p) stream above; cover it with regular graphs explicitly.
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from(seed + 400);
        let g = gen::random_regular(48, 3, &mut rng).expect("cubic graph");
        for algo in registry().iter() {
            if algo.problem() != Problem::SinklessOrientation {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(seed));
            run.verify(&g)
                .unwrap_or_else(|e| panic!("{} invalid at seed {seed}: {e}", algo.name()));
        }
    }
}

#[test]
fn fractional_matching_always_feasible() {
    for (g, _) in cases(12, 64, 2) {
        let f = matching::fractional_matching(&g);
        assert!(matching::fractional_is_valid(&g, &f), "n={}", g.n());
    }
}

#[test]
fn metrics_inequalities() {
    let luby = registry().get("mis/luby").expect("registered");
    for (g, seed) in cases(12, 64, 3) {
        let rep = luby.execute(&g, &RunSpec::new(seed)).report(&g);
        assert!(rep.edge_averaged_one_endpoint <= rep.edge_averaged + 1e-9);
        assert!(rep.node_averaged <= rep.node_worst as f64 + 1e-9);
        assert!(rep.node_worst <= rep.rounds);
    }
}

#[test]
fn line_graph_size_formula() {
    for (g, _) in cases(10, 40, 4) {
        let l = transform::line_graph(&g);
        assert_eq!(l.n(), g.m());
        let expect: usize = g.degrees().map(|d| d * (d.saturating_sub(1)) / 2).sum();
        assert_eq!(l.m(), expect);
    }
}

#[test]
fn matching_is_mis_on_line_graph() {
    // §1.1: a maximal matching of G is an MIS of L(G).
    let luby = registry().get("matching/luby").expect("registered");
    for (g, seed) in cases(10, 40, 5) {
        let run = luby.execute(&g, &RunSpec::new(seed));
        let in_matching = run.solution.matching().expect("matching output");
        let l = transform::line_graph(&g);
        assert!(analysis::is_maximal_independent_set(&l, in_matching));
    }
}

#[test]
fn lifts_preserve_degree_sequences() {
    for (i, (g, seed)) in cases(10, 32, 6).into_iter().enumerate() {
        let q = 1 + i % 4;
        let mut rng = Rng::seed_from(seed);
        let lifted = lift::lift(&g, q, &mut rng);
        assert_eq!(lifted.graph.n(), g.n() * q);
        assert_eq!(lifted.graph.m(), g.m() * q);
        for x in lifted.graph.nodes() {
            assert_eq!(lifted.graph.degree(x), g.degree(lifted.project(x)));
        }
    }
}

#[test]
fn induced_subgraph_degrees_bounded() {
    for (g, mask_seed) in cases(10, 48, 7) {
        let mut rng = Rng::seed_from(mask_seed);
        let keep: Vec<bool> = g.nodes().map(|_| rng.chance(0.6)).collect();
        let (sub, new_to_old, _) = transform::induced_subgraph(&g, &keep);
        for v in sub.nodes() {
            assert!(sub.degree(v) <= g.degree(new_to_old[v]));
        }
    }
}

#[test]
fn csr_neighbors_equal_insertion_order_adjacency() {
    // Property: on arbitrary random edge sets, the frozen CSR rows must
    // equal the per-node adjacency a reference Vec<Vec<_>> accumulates in
    // insertion order — port numbering is a pure function of the edge
    // sequence, not of the CSR packing. Also cross-checks the flat
    // edge-port and reverse-port tables against the rows.
    let mut rng = Rng::seed_from(0xC5A0);
    for case in 0..25 {
        let n = 2 + (rng.next_u64() as usize) % 60;
        let mut b = GraphBuilder::new(n);
        let mut reference: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for _ in 0..(rng.next_u64() as usize) % (3 * n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u != v && b.try_add(u, v) {
                let e = b.m() - 1;
                reference[u].push((v, e));
                reference[v].push((u, e));
            }
        }
        let g = b.build();
        assert_eq!(g.n(), n);
        for v in g.nodes() {
            assert_eq!(
                g.neighbors(v),
                &reference[v][..],
                "case {case}: node {v} row diverges from insertion order"
            );
        }
        for (e, u, v) in g.edges() {
            let (pu, pv) = g.edge_ports(e);
            assert_eq!(g.neighbors(u)[pu], (v, e), "case {case}: edge-port at u");
            assert_eq!(g.neighbors(v)[pv], (u, e), "case {case}: edge-port at v");
        }
        for v in g.nodes() {
            for (port, &(u, e)) in g.neighbors(v).iter().enumerate() {
                let rev = g.rev_port(g.csr_offset(v) + port);
                assert_eq!(
                    g.neighbors(u)[rev],
                    (v, e),
                    "case {case}: reverse port round-trip"
                );
            }
        }
    }
}

#[test]
fn builder_try_add_matches_a_reference_edge_set() {
    // Property: a random interleaving of `add_edge` (on known-fresh
    // pairs), `try_add` (on arbitrary pairs, both orientations), and
    // `contains` behaves exactly like a reference HashSet of normalized
    // pairs — including duplicate and reversed submissions.
    use std::collections::HashSet;
    let mut rng = Rng::seed_from(0xB01D);
    for case in 0..20 {
        let n = 3 + (rng.next_u64() as usize) % 40;
        let mut b = GraphBuilder::new(n);
        let mut reference: HashSet<(usize, usize)> = HashSet::new();
        for _ in 0..(rng.next_u64() as usize) % (4 * n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            match rng.index(3) {
                0 => {
                    // Fresh pairs go through the unchecked fast path.
                    if reference.insert(key) {
                        b.add_edge(u, v).expect("fresh edge");
                    } else {
                        assert!(!b.try_add(u, v), "case {case}: duplicate accepted");
                    }
                }
                1 => {
                    assert_eq!(b.try_add(u, v), reference.insert(key), "case {case}");
                }
                _ => {
                    // Reversed submission must dedup identically.
                    assert_eq!(b.try_add(v, u), reference.insert(key), "case {case}");
                }
            }
            assert!(b.contains(u, v) && b.contains(v, u), "case {case}");
        }
        assert_eq!(b.m(), reference.len(), "case {case}");
        let g = b.build();
        let built: HashSet<(usize, usize)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        assert_eq!(built, reference, "case {case}: edge sets diverge");
    }
}

#[test]
fn sort_adjacency_preserves_edges_and_port_tables() {
    // Property: `sort_adjacency` reorders ports by (neighbor, edge id)
    // without touching the edge list, and the flat edge-port /
    // reverse-port tables stay consistent with the reordered rows.
    let mut rng = Rng::seed_from(0x50B7);
    for case in 0..15 {
        let n = 3 + (rng.next_u64() as usize) % 40;
        let mut plain = GraphBuilder::new(n);
        let mut sorted = GraphBuilder::new(n);
        for _ in 0..(rng.next_u64() as usize) % (3 * n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u != v && plain.try_add(u, v) {
                assert!(sorted.try_add(u, v));
            }
        }
        sorted.sort_adjacency();
        let (gp, gs) = (plain.build(), sorted.build());
        // Same edges, same ids.
        assert_eq!(
            gp.edges().collect::<Vec<_>>(),
            gs.edges().collect::<Vec<_>>(),
            "case {case}"
        );
        for v in gs.nodes() {
            let row: Vec<(usize, usize)> = gs.neighbors(v).to_vec();
            let mut resorted = gp.neighbors(v).to_vec();
            resorted.sort_unstable();
            assert_eq!(
                row, resorted,
                "case {case}: node {v} row not (nbr, edge)-sorted"
            );
        }
        // Port tables must describe the *sorted* rows.
        for (e, u, v) in gs.edges() {
            let (pu, pv) = gs.edge_ports(e);
            assert_eq!(gs.neighbors(u)[pu], (v, e), "case {case}");
            assert_eq!(gs.neighbors(v)[pv], (u, e), "case {case}");
        }
        for v in gs.nodes() {
            for (port, &(u, e)) in gs.neighbors(v).iter().enumerate() {
                let rev = gs.rev_port(gs.csr_offset(v) + port);
                assert_eq!(gs.neighbors(u)[rev], (v, e), "case {case}");
            }
        }
    }
}

#[test]
fn counting_sort_build_survives_adversarial_insertion_orders() {
    // The two-pass counting sort in `build()` must produce coherent CSR
    // offsets for insertion orders designed to stress it: all of one
    // node's edges first, descending endpoints, and a striped order.
    let n = 24;
    let mut all_pairs: Vec<(usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if (u + v) % 3 == 0 {
                all_pairs.push((u, v));
            }
        }
    }
    let orders: Vec<Vec<(usize, usize)>> = vec![
        all_pairs.clone(),
        all_pairs.iter().rev().map(|&(u, v)| (v, u)).collect(),
        {
            // Stripe: edges of the highest-degree hub node last.
            let (hub, rest): (Vec<_>, Vec<_>) =
                all_pairs.iter().partition(|&&(u, v)| u == 0 || v == 0);
            rest.into_iter().chain(hub).collect()
        },
    ];
    let mut reference: Option<Vec<(usize, usize)>> = None;
    for (i, order) in orders.iter().enumerate() {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in order {
            b.add_edge(u, v).expect("valid edge");
        }
        b.sort_adjacency();
        let g = b.build();
        assert_eq!(g.m(), all_pairs.len(), "order {i}");
        assert_eq!(g.degree_sum(), 2 * g.m(), "order {i}");
        // Offsets are monotone and rows match degrees.
        for v in g.nodes() {
            assert_eq!(g.arc_range(v).len(), g.degree(v), "order {i}");
        }
        // With canonical ports, every insertion order yields identical
        // adjacency rows (edge ids differ, neighbor order must not).
        let rows: Vec<Vec<usize>> = g.nodes().map(|v| g.neighbor_ids(v).collect()).collect();
        let flat: Vec<(usize, usize)> = rows
            .iter()
            .enumerate()
            .flat_map(|(v, r)| r.iter().map(move |&u| (v, u)))
            .collect();
        match &reference {
            None => reference = Some(flat),
            Some(expect) => assert_eq!(&flat, expect, "order {i}: adjacency diverges"),
        }
    }
}

#[test]
fn stream_edges_matches_the_buffered_builder() {
    // Property: feeding the identical duplicate-free random edge stream
    // to the two-pass `stream_edges` path and to the buffered builder
    // yields the same `Graph`, field for field (`Eq` covers all five
    // frozen CSR arrays, so edge ids, port order, and reverse ports all
    // have to agree — the low-memory path is not allowed to renumber
    // anything).
    let mut rng = Rng::seed_from(0x57E4);
    for case in 0..20 {
        let n = 2 + (rng.next_u64() as usize) % 60;
        let mut b = GraphBuilder::new(n);
        let mut list: Vec<(usize, usize)> = Vec::new();
        for _ in 0..(rng.next_u64() as usize) % (3 * n) {
            let u = rng.index(n);
            let v = rng.index(n);
            if u != v && b.try_add(u, v) {
                list.push((u, v));
            }
        }
        let buffered = b.build();
        let streamed = GraphBuilder::stream_edges(n, |sink| {
            for &(u, v) in &list {
                sink.edge(u, v);
            }
        })
        .expect("duplicate-free in-range stream");
        assert_eq!(streamed, buffered, "case {case}: n={n} m={}", list.len());
    }
}

#[test]
fn csr_v1_round_trips_every_registry_family() {
    // Property: every family in the composed generator registry — base
    // graph families, the new heavy-tailed generators, and the
    // lower-bound hard instances — survives a localavg-csr/v1 write →
    // read round trip bit-identically, the verified footer equals the
    // in-memory content hash, and re-serializing the read-back graph
    // reproduces the original bytes (the format has one canonical
    // encoding per graph).
    use localavg::graph::io;
    for family in localavg_bench::generators::registry().iter() {
        let n = 64;
        let seed = localavg_bench::cell::graph_seed(9, family.name(), n);
        let g = family
            .build(n, seed)
            .unwrap_or_else(|e| panic!("{} failed to build: {e:?}", family.name()));
        let mut bytes = Vec::new();
        let written = io::write_graph(&mut bytes, &g).expect("in-memory write");
        assert_eq!(written, bytes.len() as u64, "{}", family.name());
        assert_eq!(
            written,
            io::encoded_size_bytes(g.n(), g.m()),
            "{}: size formula",
            family.name()
        );
        let (h, footer) = io::read_graph_with_hash(&bytes[..])
            .unwrap_or_else(|e| panic!("{} rejected on read: {e}", family.name()));
        assert_eq!(h, g, "{}: round trip changed the graph", family.name());
        assert_eq!(
            footer,
            io::content_hash(&g),
            "{}: footer vs content hash",
            family.name()
        );
        let mut again = Vec::new();
        io::write_graph(&mut again, &h).expect("re-serialize");
        assert_eq!(again, bytes, "{}: encoding not canonical", family.name());
    }
}

#[test]
#[ignore = "scale check: set LAVG_GRAPH_FILE to a localavg-csr/v1 file and run with --ignored"]
fn graph_file_round_trips_byte_identically() {
    // The EXPERIMENTS.md §H acceptance leg at full scale: an `exp gen`
    // artifact (10⁷ nodes in practice) must decode and re-encode to the
    // exact on-disk bytes. Ignored by default — the in-memory property
    // above covers every registry family at test scale; this one is for
    // the multi-gigabyte artifacts CI never builds.
    use localavg::graph::io;
    let path = std::env::var("LAVG_GRAPH_FILE").expect("set LAVG_GRAPH_FILE to a .csr path");
    let bytes = std::fs::read(&path).expect("readable graph file");
    let (g, _) = io::read_graph_with_hash(&bytes[..]).expect("valid localavg-csr/v1 file");
    let mut again = Vec::with_capacity(bytes.len());
    io::write_graph(&mut again, &g).expect("re-serialize");
    // assert! (not assert_eq!) — no gigabyte diff dumps on failure.
    assert!(again == bytes, "re-encoding differs from the on-disk bytes");
}

#[test]
fn power_graph_contains_original() {
    for (i, (g, _)) in cases(10, 32, 8).into_iter().enumerate() {
        let k = 1 + i % 3;
        let p = transform::power_graph(&g, k);
        for (_, u, v) in g.edges() {
            assert!(p.has_edge(u, v));
        }
    }
}

// ---------------------------------------------------------------------------
// Rake-and-compress decomposition properties (PR 9)
// ---------------------------------------------------------------------------

/// The registry's tree-flagged families — the sampling domain of the
/// `*/tree-rc` algorithms.
fn tree_families() -> Vec<&'static localavg::graph::gen::NamedGenerator> {
    let fams: Vec<_> = localavg_bench::generators::registry()
        .iter()
        .filter(|f| f.is_tree())
        .collect();
    assert_eq!(fams.len(), 7, "expected the seven tree-flagged families");
    fams
}

#[test]
fn decomposition_partitions_every_tree_family_with_logarithmic_depth() {
    use localavg::graph::decomp::RcDecomposition;
    // Property: on every tree family × size × seed, every node lands in
    // exactly one layer (1 ≤ layer(v) ≤ depth), the layer/label vectors
    // are a pure function of (graph, seed), and the depth stays within
    // c·log₂ n for a small explicit c (the rake-and-compress geometric
    // decay; c = 4 leaves slack over the ~1/(1-...) constant).
    for family in tree_families() {
        for n in [8usize, 65, 256] {
            for seed in [0u64, 9] {
                let g = family
                    .build(n, seed)
                    .unwrap_or_else(|e| panic!("{} failed: {e:?}", family.name()));
                let d = RcDecomposition::compute(&g, seed).unwrap_or_else(|e| {
                    panic!("{} n={n}: tree family rejected: {e}", family.name())
                });
                let depth = d.depth();
                assert!(depth >= 1, "{} n={n}: empty decomposition", family.name());
                for v in g.nodes() {
                    let layer = d.layer(v);
                    assert!(
                        (1..=depth).contains(&layer),
                        "{} n={n}: node {v} in layer {layer} outside 1..={depth}",
                        family.name()
                    );
                }
                let bound = 4.0 * (g.n().max(2) as f64).log2().ceil() + 2.0;
                assert!(
                    (depth as f64) <= bound,
                    "{} n={n}: depth {depth} exceeds {bound}",
                    family.name()
                );
                let again = RcDecomposition::compute(&g, seed).unwrap();
                for v in g.nodes() {
                    assert_eq!(d.layer(v), again.layer(v), "{} layer", family.name());
                    assert_eq!(d.label(v), again.label(v), "{} label", family.name());
                }
                let reseeded = RcDecomposition::compute(&g, seed ^ 0xDEAD).unwrap();
                let _ = reseeded.depth(); // different seed must still be valid
            }
        }
    }
}

#[test]
fn tree_rc_transcripts_are_byte_identical_across_thread_counts() {
    use localavg::core::algo::Exec;
    // The structural `*/tree-rc` transcripts never enter the round
    // engine, so executor and chunk geometry must be invisible — the
    // same invariance contract the engine-driven algorithms satisfy.
    for family in ["tree/bounded/3", "tree/spider"] {
        let g = gen::registry()
            .get(family)
            .expect("registered family")
            .build(300, 17)
            .expect("instance");
        for name in ["mis/tree-rc", "ruling/tree-rc", "coloring/tree-rc"] {
            let algo = registry().get(name).expect("registered");
            let seq = algo.execute(&g, &RunSpec::new(5));
            for threads in [1usize, 2, 8] {
                let par = algo.execute(&g, &RunSpec::new(5).with_exec(Exec::Parallel { threads }));
                assert_eq!(seq.solution, par.solution, "{name} on {family}");
                assert_eq!(
                    seq.transcript, par.transcript,
                    "{name} on {family} with {threads} thread(s)"
                );
            }
        }
    }
}

#[test]
fn tree_rc_is_valid_and_seed_deterministic_on_every_tree_family() {
    for family in tree_families() {
        let g = family.build(128, 3).expect("tree instance");
        for name in ["mis/tree-rc", "ruling/tree-rc", "coloring/tree-rc"] {
            let algo = registry().get(name).expect("registered");
            let a = algo.execute(&g, &RunSpec::new(11));
            a.verify(&g)
                .unwrap_or_else(|e| panic!("{name} invalid on {}: {e}", family.name()));
            let b = algo.execute(&g, &RunSpec::new(11));
            assert_eq!(a.solution, b.solution, "{name} on {}", family.name());
            assert_eq!(a.transcript, b.transcript, "{name} on {}", family.name());
        }
    }
}

#[test]
fn tree_rc_node_average_stays_flat_while_worst_case_grows() {
    use localavg::core::metrics::CompletionTimes;
    // The tentpole claim at test scale: on growing bounded-degree trees,
    // mis/ and ruling/tree-rc node-averaged completion stays O(1) (flat,
    // small) while the worst case grows with log n. coloring/tree-rc is
    // the negative control: its average tracks the worst case.
    let fam = gen::registry().get("tree/bounded/3").expect("registered");
    let mut worsts = Vec::new();
    for n in [256usize, 1024, 4096] {
        let g = fam.build(n, 5).expect("instance");
        for name in ["mis/tree-rc", "ruling/tree-rc"] {
            let run = registry()
                .get(name)
                .expect("registered")
                .execute(&g, &RunSpec::new(2));
            let avg = CompletionTimes::from_transcript(&g, &run.transcript).node_mean();
            assert!(
                avg < 12.0,
                "{name} n={n}: node average {avg} should stay O(1)"
            );
        }
        worsts.push(
            registry()
                .get("mis/tree-rc")
                .expect("registered")
                .execute(&g, &RunSpec::new(2))
                .transcript
                .rounds,
        );
    }
    // Depth is seed-dependent, so individual steps may wobble; the
    // endpoints must still show growth past the flat-average scale.
    assert!(
        worsts[2] > worsts[0] && worsts[2] > 12,
        "worst case should grow with n: {worsts:?}"
    );
}
