//! Property-based tests (proptest) over the whole stack: algorithm
//! outputs are valid on arbitrary random graphs, metrics obey their
//! defining inequalities, and structural transforms preserve invariants.

use localavg::core::metrics::ComplexityReport;
use localavg::core::{matching, mis, ruling};
use localavg::graph::rng::Rng;
use localavg::graph::{analysis, gen, lift, transform, Graph};
use proptest::prelude::*;

/// Strategy: a random graph from G(n, p) with given bounds.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n, 0.0f64..0.3, 0u64..1_000).prop_map(|(n, p, seed)| {
        let mut rng = Rng::seed_from(seed);
        gen::gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn luby_mis_always_valid(g in arb_graph(64), seed in 0u64..100) {
        let run = mis::luby(&g, seed);
        prop_assert!(analysis::is_maximal_independent_set(&g, &run.in_set));
        prop_assert!(run.transcript.all_nodes_committed());
    }

    #[test]
    fn greedy_mis_always_valid(g in arb_graph(64)) {
        let run = mis::greedy_by_id(&g);
        prop_assert!(analysis::is_maximal_independent_set(&g, &run.in_set));
    }

    #[test]
    fn two_two_ruling_always_valid(g in arb_graph(64), seed in 0u64..100) {
        let run = ruling::two_two(&g, seed);
        prop_assert!(analysis::is_ruling_set(&g, &run.in_set, 2, 2));
    }

    #[test]
    fn luby_matching_always_valid(g in arb_graph(64), seed in 0u64..100) {
        let run = matching::luby(&g, seed);
        prop_assert!(analysis::is_maximal_matching(&g, &run.in_matching));
    }

    #[test]
    fn det_matching_always_valid(g in arb_graph(48)) {
        let run = matching::deterministic(&g);
        prop_assert!(analysis::is_maximal_matching(&g, &run.in_matching));
    }

    #[test]
    fn fractional_matching_always_feasible(g in arb_graph(64)) {
        let f = matching::fractional_matching(&g);
        prop_assert!(matching::fractional_is_valid(&g, &f));
    }

    #[test]
    fn metrics_inequalities(g in arb_graph(64), seed in 0u64..100) {
        let run = mis::luby(&g, seed);
        let rep = ComplexityReport::from_run(&g, &run.transcript);
        prop_assert!(rep.edge_averaged_one_endpoint <= rep.edge_averaged + 1e-9);
        prop_assert!(rep.node_averaged <= rep.node_worst as f64 + 1e-9);
        prop_assert!(rep.node_worst <= rep.rounds);
    }

    #[test]
    fn line_graph_size_formula(g in arb_graph(40)) {
        let l = transform::line_graph(&g);
        prop_assert_eq!(l.n(), g.m());
        let expect: usize = g.degrees().map(|d| d * (d.saturating_sub(1)) / 2).sum();
        prop_assert_eq!(l.m(), expect);
    }

    #[test]
    fn matching_is_mis_on_line_graph(g in arb_graph(40), seed in 0u64..100) {
        // §1.1: a maximal matching of G is an MIS of L(G).
        let run = matching::luby(&g, seed);
        let l = transform::line_graph(&g);
        prop_assert!(analysis::is_maximal_independent_set(&l, &run.in_matching));
    }

    #[test]
    fn lifts_preserve_degree_sequences(g in arb_graph(32), q in 1usize..5, seed in 0u64..100) {
        let mut rng = Rng::seed_from(seed);
        let lifted = lift::lift(&g, q, &mut rng);
        prop_assert_eq!(lifted.graph.n(), g.n() * q);
        prop_assert_eq!(lifted.graph.m(), g.m() * q);
        for x in lifted.graph.nodes() {
            prop_assert_eq!(lifted.graph.degree(x), g.degree(lifted.project(x)));
        }
    }

    #[test]
    fn induced_subgraph_degrees_bounded(g in arb_graph(48), mask_seed in 0u64..100) {
        let mut rng = Rng::seed_from(mask_seed);
        let keep: Vec<bool> = g.nodes().map(|_| rng.chance(0.6)).collect();
        let (sub, new_to_old, _) = transform::induced_subgraph(&g, &keep);
        for v in sub.nodes() {
            prop_assert!(sub.degree(v) <= g.degree(new_to_old[v]));
        }
    }

    #[test]
    fn power_graph_contains_original(g in arb_graph(32), k in 1usize..4) {
        let p = transform::power_graph(&g, k);
        for (_, u, v) in g.edges() {
            prop_assert!(p.has_edge(u, v));
        }
    }
}
