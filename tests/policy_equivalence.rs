//! Transcript-policy equivalence: `Full`, `CompletionsOnly`, and `None`
//! must produce identical solutions, completion times, and Definition 1
//! metrics — the policy only drops *auxiliary* ledger (the CONGEST audit
//! and, for `None`, the termination clocks). Checked for every registry
//! algorithm, across executors at 1/2/8 threads, with and without
//! reusable [`Workspace`] arenas, and against the committed sweep
//! goldens (whose bytes pin the `Full` policy).

use localavg::core::algo::{registry, Exec, RunSpec, TranscriptPolicy, Workspace};
use localavg::graph::gen;

const LEAN_POLICIES: [TranscriptPolicy; 2] =
    [TranscriptPolicy::CompletionsOnly, TranscriptPolicy::None];

#[test]
fn policies_agree_on_metrics_and_solutions() {
    let g = gen::registry()
        .get("regular/4")
        .expect("registered family")
        .build(96, 5)
        .expect("instance");
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree()
            || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
        {
            continue;
        }
        let full = algo.execute(&g, &RunSpec::new(7));
        let full_times = full.completion_times(&g);
        for policy in LEAN_POLICIES {
            let lean = algo.execute(&g, &RunSpec::new(7).with_transcript(policy));
            let label = format!("{} under {policy:?}", algo.name());
            assert_eq!(lean.solution, full.solution, "{label}: outputs differ");
            assert_eq!(lean.verify(&g), Ok(()), "{label}: verification");
            assert_eq!(
                lean.completion_times(&g),
                full_times,
                "{label}: completion times differ"
            );
            // Definition 1 metrics are bit-identical.
            let a = lean.report(&g);
            let b = full.report(&g);
            assert_eq!(
                a.node_averaged.to_bits(),
                b.node_averaged.to_bits(),
                "{label}"
            );
            assert_eq!(
                a.edge_averaged.to_bits(),
                b.edge_averaged.to_bits(),
                "{label}"
            );
            assert_eq!(
                a.edge_averaged_one_endpoint.to_bits(),
                b.edge_averaged_one_endpoint.to_bits(),
                "{label}"
            );
            assert_eq!(a.node_worst, b.node_worst, "{label}");
            assert_eq!(a.rounds, b.rounds, "{label}");
            // Only the audit is gone.
            assert_eq!(lean.transcript.messages_sent, 0, "{label}");
            assert!(lean.transcript.max_message_bits.is_empty(), "{label}");
        }
        // CompletionsOnly keeps the termination ledger too.
        let completions = algo.execute(
            &g,
            &RunSpec::new(7).with_transcript(TranscriptPolicy::CompletionsOnly),
        );
        assert_eq!(
            completions.transcript.node_halt_round,
            full.transcript.node_halt_round,
            "{}: halt clocks under CompletionsOnly",
            algo.name()
        );
    }
}

#[test]
fn policies_are_thread_count_invariant() {
    // Identical results at 1/2/8 worker threads under every policy
    // (instances above PARALLEL_MIN_NODES so chunking really happens).
    let g = gen::registry()
        .get("tree/random")
        .expect("registered family")
        .build(300, 17)
        .expect("instance");
    assert!(g.n() >= localavg::sim::engine::PARALLEL_MIN_NODES);
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree()
            || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
        {
            continue;
        }
        for policy in [
            TranscriptPolicy::Full,
            TranscriptPolicy::CompletionsOnly,
            TranscriptPolicy::None,
        ] {
            let seq = algo.execute(&g, &RunSpec::new(5).with_transcript(policy));
            for threads in [1usize, 2, 8] {
                let par = algo.execute(
                    &g,
                    &RunSpec::new(5)
                        .with_transcript(policy)
                        .with_exec(Exec::Parallel { threads }),
                );
                let label = format!("{} / {policy:?} / {threads} thread(s)", algo.name());
                assert_eq!(seq.solution, par.solution, "{label}: outputs");
                assert_eq!(
                    seq.transcript.node_commit_round, par.transcript.node_commit_round,
                    "{label}: node commit clocks"
                );
                assert_eq!(
                    seq.transcript.edge_commit_round, par.transcript.edge_commit_round,
                    "{label}: edge commit clocks"
                );
                assert_eq!(
                    seq.transcript.node_halt_round, par.transcript.node_halt_round,
                    "{label}: halt clocks"
                );
                assert_eq!(
                    seq.transcript.max_message_bits, par.transcript.max_message_bits,
                    "{label}: audit"
                );
            }
        }
    }
}

#[test]
fn workspace_reuse_is_policy_transparent() {
    // One workspace serving every (algorithm, policy) combination in a
    // row must never leak state between runs.
    let g = gen::registry()
        .get("regular/4")
        .expect("registered family")
        .build(96, 9)
        .expect("instance");
    let mut ws = Workspace::new();
    for round in 0..2 {
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree()
                || (algo.requires_tree() && !localavg::graph::analysis::is_forest(&g))
            {
                continue;
            }
            for policy in [
                TranscriptPolicy::Full,
                TranscriptPolicy::None,
                TranscriptPolicy::CompletionsOnly,
            ] {
                let spec = RunSpec::new(3).with_transcript(policy);
                let reused = algo.execute_in(&g, &spec, &mut ws);
                let fresh = algo.execute(&g, &spec);
                let label = format!("{} / {policy:?} / pass {round}", algo.name());
                assert_eq!(reused.solution, fresh.solution, "{label}");
                assert_eq!(
                    reused.transcript.node_commit_round, fresh.transcript.node_commit_round,
                    "{label}"
                );
                assert_eq!(
                    reused.transcript.node_halt_round, fresh.transcript.node_halt_round,
                    "{label}"
                );
                assert_eq!(
                    reused.transcript.messages_sent, fresh.transcript.messages_sent,
                    "{label}"
                );
            }
        }
    }
    assert!(
        ws.reuse_count() > 0,
        "the workspace should have been reused"
    );
}
