//! Pool-lifecycle stress: one long-lived [`Workspace`] — the shape a
//! resident `exp serve` pool worker holds for hours — driven through
//! hundreds of alternating executes across CSR shapes, algorithms,
//! transcript policies, and executors, interleaved with cells whose
//! corrupted parameters panic mid-round *inside* the worker pool. The
//! workspace (and the persistent pool it owns) must shrug all of it off:
//! every follow-up cell has to byte-match a cold start, and a worker-side
//! panic must neither deadlock the pool nor poison later runs.

use localavg::core::algo::{registry, Exec, RunSpec, TranscriptPolicy, Workspace};
use localavg::graph::{gen, rng::Rng, Graph};
use localavg::sim::prelude::{Ctx, Envelope, OutputKind, Process};

/// Broadcasts for two rounds, then commits the sum of its round-1 inbox.
/// With `poison = true` ("corrupted params"), node 7 panics in round 1 —
/// after lower-id nodes already wrote sends into the shared outbox arena,
/// and inside whatever pool worker owns its chunk.
struct FaultyBroadcast {
    poison: bool,
}

impl Process for FaultyBroadcast {
    type Message = u64;
    type NodeOutput = u64;
    type EdgeOutput = ();
    type Params = bool;
    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(poison: &bool, ctx: &mut Ctx<'_, Self>) -> Self {
        ctx.broadcast(1);
        FaultyBroadcast { poison: *poison }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<u64>]) {
        if ctx.round() == 1 {
            assert!(!(self.poison && ctx.id() == 7), "corrupted cell params");
            ctx.broadcast(2);
        } else {
            ctx.commit_node(inbox.iter().map(|e| e.msg).sum());
            ctx.halt();
        }
    }
}

fn shapes() -> Vec<Graph> {
    let mut rng = Rng::seed_from(99);
    vec![
        gen::grid(16, 20),
        gen::random_regular(320, 4, &mut rng).expect("regular instance"),
        gen::cycle(300),
    ]
}

#[test]
fn one_workspace_survives_hundreds_of_mixed_cells_and_panics() {
    let shapes = shapes();
    let algos = ["mis/luby", "mis/greedy", "matching/luby"];
    let policies = [
        TranscriptPolicy::Full,
        TranscriptPolicy::CompletionsOnly,
        TranscriptPolicy::None,
    ];
    let mut ws = Workspace::new();
    let mut executes = 0usize;
    let mut panics = 0usize;
    for i in 0..216u64 {
        // Shapes change in blocks of seven so arena reuse actually
        // happens between flushes; everything else rotates per cell.
        let g = &shapes[(i as usize / 7) % shapes.len()];
        let algo = registry().get(algos[i as usize % algos.len()]).unwrap();
        let policy = policies[i as usize % policies.len()];
        let exec = match i % 4 {
            0 => Exec::Sequential,
            r => Exec::Parallel {
                threads: 1 + r as usize,
            },
        };
        let mut spec = RunSpec::new(i).with_exec(exec).with_transcript(policy);
        if i % 5 == 0 {
            // Degenerate chunk geometry: forces the chunked path (and the
            // pool) even where the size cutoff would skip it.
            spec = spec.with_chunk_nodes(Some(48));
        }

        if i % 31 == 30 {
            // A corrupted cell: must panic, and must not take the
            // workspace, its arenas, or its resident pool down with it.
            let workers_before = ws.pool_workers();
            let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = spec.run_in::<FaultyBroadcast>(g, &true, &mut ws);
            }));
            assert!(aborted.is_err(), "poisoned cell #{i} must panic");
            panics += 1;
            assert_eq!(
                ws.pool_workers(),
                workers_before,
                "panic #{panics} changed the pool"
            );
            // The very same process type through the abandoned arena.
            let healed = spec.run_in::<FaultyBroadcast>(g, &false, &mut ws);
            let cold = spec.run::<FaultyBroadcast>(g, &false);
            assert_eq!(healed, cold, "cell after panic #{panics} drifted");
            executes += 2;
            continue;
        }

        let warm = algo.execute_in(g, &spec, &mut ws);
        let cold = algo.execute(g, &spec);
        let label = format!("cell #{i} ({} on shape {})", algo.name(), g.n());
        assert_eq!(warm.solution, cold.solution, "{label}: outputs drifted");
        assert_eq!(
            warm.transcript, cold.transcript,
            "{label}: transcript drifted"
        );
        executes += 1;
    }
    assert!(executes >= 200, "stress ran only {executes} cells");
    assert!(panics >= 6, "stress injected only {panics} panics");
    assert_eq!(executes, ws.run_count());
    // threads maxed at 4 → the resident pool settled at 3 workers.
    assert_eq!(ws.pool_workers(), 3);
    assert!(
        ws.reuse_count() > executes / 2,
        "arena reuse collapsed: {} of {executes}",
        ws.reuse_count()
    );
}
