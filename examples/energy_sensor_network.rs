//! The paper's motivating scenario (§1, [CGP20]): node-averaged running
//! time tracks the total energy spent in a sensor network. A deployment
//! that only needs a (2,2)-ruling set (Theorem 2) instead of a full MIS
//! finishes with O(1) average work per sensor.
//!
//! ```text
//! cargo run --release --example energy_sensor_network
//! ```

use localavg::core::algo::{registry, RunSpec};
use localavg::graph::{analysis, gen, rng::Rng, transform};

fn main() {
    // A sensor field: random geometric graph over the unit square; keep
    // the giant component so every sensor can participate.
    let mut rng = Rng::seed_from(99);
    let field = gen::random_geometric(1500, 0.05, &mut rng);
    let (comp, _) = analysis::components(&field);
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &c in &comp {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        *counts.iter().max_by_key(|(_, &n)| n).expect("nonempty").0
    };
    let keep: Vec<bool> = comp.iter().map(|&c| c == giant).collect();
    let (g, _, _) = transform::induced_subgraph(&field, &keep);
    println!(
        "sensor field: n={}, m={}, Δ={}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Cluster-head election via MIS, or via the relaxed (2,2)-ruling set
    // of Theorem 2 — the same three lines either way.
    let mis_run = registry()
        .get("mis/luby")
        .expect("registered")
        .execute(&g, &RunSpec::new(1));
    mis_run.verify(&g).expect("valid MIS");
    let rs_run = registry()
        .get("ruling/two-two")
        .expect("registered")
        .execute(&g, &RunSpec::new(1));
    rs_run.verify(&g).expect("valid (2,2)-ruling set");
    let mis_report = mis_run.report(&g);
    let rs_report = rs_run.report(&g);

    let heads = |run: &localavg::core::algo::AlgoRun| {
        run.solution
            .node_set()
            .expect("node-set output")
            .iter()
            .filter(|&&b| b)
            .count()
    };
    println!("\n                       MIS (Luby)   (2,2)-ruling set");
    println!(
        "cluster heads          {:>10}   {:>16}",
        heads(&mis_run),
        heads(&rs_run)
    );
    println!(
        "avg energy (node-avg)  {:>10.2}   {:>16.2}",
        mis_report.node_averaged, rs_report.node_averaged
    );
    println!(
        "makespan (worst case)  {:>10}   {:>16}",
        mis_report.rounds, rs_report.rounds
    );
    println!(
        "\nPaper take-away: if the application tolerates coverage radius 2, \
         each sensor spends O(1) rounds on average (Theorem 2) — MIS cannot \
         do that in general (Theorem 16)."
    );
}
