//! The paper's motivating scenario (§1, [CGP20]): node-averaged running
//! time tracks the total energy spent in a sensor network. A deployment
//! that only needs a (2,2)-ruling set (Theorem 2) instead of a full MIS
//! finishes with O(1) average work per sensor.
//!
//! ```text
//! cargo run --release --example energy_sensor_network
//! ```

use localavg::core::metrics::ComplexityReport;
use localavg::core::{mis, ruling};
use localavg::graph::{analysis, gen, rng::Rng, transform};

fn main() {
    // A sensor field: random geometric graph over the unit square; keep
    // the giant component so every sensor can participate.
    let mut rng = Rng::seed_from(99);
    let field = gen::random_geometric(1500, 0.05, &mut rng);
    let (comp, _) = analysis::components(&field);
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &c in &comp {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        *counts.iter().max_by_key(|(_, &n)| n).expect("nonempty").0
    };
    let keep: Vec<bool> = comp.iter().map(|&c| c == giant).collect();
    let (g, _, _) = transform::induced_subgraph(&field, &keep);
    println!(
        "sensor field: n={}, m={}, Δ={}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Cluster-head election via MIS...
    let mis_run = mis::luby(&g, 1);
    let mis_report = ComplexityReport::from_run(&g, &mis_run.transcript);
    // ...or via the relaxed (2,2)-ruling set of Theorem 2.
    let rs_run = ruling::two_two(&g, 1);
    assert!(analysis::is_ruling_set(&g, &rs_run.in_set, 2, 2));
    let rs_report = ComplexityReport::from_run(&g, &rs_run.transcript);

    println!("\n                       MIS (Luby)   (2,2)-ruling set");
    println!(
        "cluster heads          {:>10}   {:>16}",
        mis_run.in_set.iter().filter(|&&b| b).count(),
        rs_run.in_set.iter().filter(|&&b| b).count()
    );
    println!(
        "avg energy (node-avg)  {:>10.2}   {:>16.2}",
        mis_report.node_averaged, rs_report.node_averaged
    );
    println!(
        "makespan (worst case)  {:>10}   {:>16}",
        mis_report.rounds, rs_report.rounds
    );
    println!(
        "\nPaper take-away: if the application tolerates coverage radius 2, \
         each sensor spends O(1) rounds on average (Theorem 2) — MIS cannot \
         do that in general (Theorem 16)."
    );
}
