//! Maximal matching three ways (§3.2): randomized (Theorem 4),
//! deterministic via fractional rounding (Theorem 5), and the greedy
//! proposal baseline — all dispatched through the unified registry, with
//! the paper's edge-averaged accounting.
//!
//! ```text
//! cargo run --release --example matching_pipeline
//! ```

use localavg::core::algo::{registry, RunSpec};
use localavg::core::matching;
use localavg::graph::{gen, rng::Rng, Graph};

fn describe(label: &str, name: &str, g: &Graph, seed: u64) {
    let run = registry()
        .get(name)
        .expect("registered")
        .execute(g, &RunSpec::new(seed));
    run.verify(g).expect("valid maximal matching");
    let in_matching = run.solution.matching().expect("matching output");
    let rep = run.report(g);
    println!(
        "{label:<16} |M|={:>5}  edge-avg={:>8.2}  node-avg={:>8.2}  worst={:>5}",
        in_matching.iter().filter(|&&b| b).count(),
        rep.edge_averaged,
        rep.node_averaged,
        rep.rounds
    );
}

fn main() {
    let mut rng = Rng::seed_from(6);
    let g = gen::random_regular(2048, 8, &mut rng).expect("8-regular graph");
    println!("graph: n={}, m={}, Δ={}\n", g.n(), g.m(), g.max_degree());

    // The fractional matching Theorem 5 starts from carries |E| weight.
    let f = matching::fractional_matching(&g);
    assert!(matching::fractional_is_valid(&g, &f));
    let fw: f64 = g
        .edges()
        .map(|(e, _, _)| f[e] * matching::edge_weight(&g, e) as f64)
        .sum();
    println!("fractional matching weight Σ f_e·w_e = {fw:.0} (= |E|)\n");

    describe("Luby (Thm 4)", "matching/luby", &g, 3);
    describe("det (Thm 5)", "matching/det", &g, 0);
    describe("greedy", "matching/greedy", &g, 0);

    println!(
        "\nTheorem 4's edge-average is O(1); Theorem 5 trades randomness for \
         polylog(Δ) averages; both beat their worst cases by a wide margin."
    );
}
