//! Sinkless orientation (Theorem 6): node-averaged O(log* n) while the
//! worst case is Θ(log n) — both variants fetched from the registry.
//!
//! ```text
//! cargo run --release --example sinkless_orientation
//! ```

use localavg::core::algo::{registry, RunSpec};
use localavg::core::subroutines::log_star;
use localavg::graph::{gen, rng::Rng};

fn main() {
    let det = registry().get("orientation/det").expect("registered");
    println!("deterministic sinkless orientation (Theorem 6)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>8}",
        "n", "node-avg", "worst", "log*n", "log2 n"
    );
    for n in [128usize, 512, 2048] {
        let mut rng = Rng::seed_from(5 + n as u64);
        let g = gen::random_regular(n, 3, &mut rng).expect("3-regular graph");
        let run = det.execute(&g, &RunSpec::new(0));
        run.verify(&g).expect("sinkless orientation");
        let rep = run.report(&g);
        println!(
            "{:>6} {:>10.2} {:>10} {:>8} {:>8.1}",
            n,
            rep.node_averaged,
            rep.rounds,
            log_star(n as f64),
            (n as f64).log2()
        );
    }

    let rand = registry().get("orientation/rand").expect("registered");
    println!("\nrandomized sinkless orientation ([GS17a]-style, node-avg O(1))\n");
    println!("{:>6} {:>10} {:>10}", "n", "node-avg", "worst");
    for n in [128usize, 512, 2048] {
        let mut rng = Rng::seed_from(11 + n as u64);
        let g = gen::random_regular(n, 3, &mut rng).expect("3-regular graph");
        let run = rand.execute(&g, &RunSpec::new(9));
        run.verify(&g).expect("sinkless orientation");
        let rep = run.report(&g);
        println!("{:>6} {:>10.2} {:>10}", n, rep.node_averaged, rep.rounds);
    }
}
