//! Sinkless orientation (Theorem 6): node-averaged O(log* n) while the
//! worst case is Θ(log n).
//!
//! ```text
//! cargo run --release --example sinkless_orientation
//! ```

use localavg::core::metrics::ComplexityReport;
use localavg::core::orientation::{self, DetOrientParams};
use localavg::core::subroutines::log_star;
use localavg::graph::{analysis, gen, rng::Rng};

fn main() {
    println!("deterministic sinkless orientation (Theorem 6)\n");
    println!("{:>6} {:>10} {:>10} {:>8} {:>8}", "n", "node-avg", "worst", "log*n", "log2 n");
    for n in [128usize, 512, 2048] {
        let mut rng = Rng::seed_from(5 + n as u64);
        let g = gen::random_regular(n, 3, &mut rng).expect("3-regular graph");
        let run = orientation::deterministic(&g, DetOrientParams::default());
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
        let rep = ComplexityReport::from_run(&g, &run.transcript);
        println!(
            "{:>6} {:>10.2} {:>10} {:>8} {:>8.1}",
            n,
            rep.node_averaged,
            rep.rounds,
            log_star(n as f64),
            (n as f64).log2()
        );
    }

    println!("\nrandomized sinkless orientation ([GS17a]-style, node-avg O(1))\n");
    println!("{:>6} {:>10} {:>10}", "n", "node-avg", "worst");
    for n in [128usize, 512, 2048] {
        let mut rng = Rng::seed_from(11 + n as u64);
        let g = gen::random_regular(n, 3, &mut rng).expect("3-regular graph");
        let run = orientation::randomized(&g, 9);
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
        let rep = ComplexityReport::from_run(&g, &run.transcript);
        println!("{:>6} {:>10.2} {:>10}", n, rep.node_averaged, rep.rounds);
    }
}
