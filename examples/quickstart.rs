//! Quickstart: run Luby's MIS on a random regular graph and print every
//! averaged complexity measure from the paper's Definition 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use localavg::core::metrics::ComplexityReport;
use localavg::core::mis;
use localavg::graph::{analysis, gen, rng::Rng};

fn main() {
    let mut rng = Rng::seed_from(2022);
    let g = gen::random_regular(1024, 8, &mut rng).expect("8-regular graph");
    println!("graph: n={}, m={}, Δ={}", g.n(), g.m(), g.max_degree());

    let run = mis::luby(&g, 7);
    assert!(analysis::is_maximal_independent_set(&g, &run.in_set));
    println!(
        "Luby MIS: |S| = {}, finished in {} rounds",
        run.in_set.iter().filter(|&&b| b).count(),
        run.worst_case()
    );

    let report = ComplexityReport::from_run(&g, &run.transcript);
    println!("node-averaged complexity (AVG_V) : {:.2}", report.node_averaged);
    println!("edge-averaged (Definition 1)     : {:.2}", report.edge_averaged);
    println!(
        "edge-averaged (one endpoint, fn.2): {:.2}",
        report.edge_averaged_one_endpoint
    );
    println!("worst node completion            : {}", report.node_worst);
    println!("termination-time node average    : {:.2}", report.node_averaged_termination);
    println!(
        "CONGEST audit: peak message size = {} bits",
        run.transcript.peak_message_bits()
    );
}
