//! Quickstart: pick any algorithm out of the string-keyed registry, run
//! it, verify its output, and print every averaged complexity measure
//! from the paper's Definition 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use localavg::core::algo::{registry, RunSpec, Workspace};
use localavg::graph::{gen, rng::Rng};

fn main() {
    let mut rng = Rng::seed_from(2022);
    let g = gen::random_regular(1024, 8, &mut rng).expect("8-regular graph");
    println!("graph: n={}, m={}, Δ={}", g.n(), g.m(), g.max_degree());

    // One unified API for every family: look up by name, run, verify.
    let luby = registry().get("mis/luby").expect("registered");
    let run = luby.execute(&g, &RunSpec::new(7));
    run.verify(&g).expect("valid MIS");
    let in_set = run.solution.node_set().expect("node-set output");
    println!(
        "Luby MIS: |S| = {}, finished in {} rounds",
        in_set.iter().filter(|&&b| b).count(),
        run.worst_case()
    );

    let report = run.report(&g);
    println!(
        "node-averaged complexity (AVG_V) : {:.2}",
        report.node_averaged
    );
    println!(
        "edge-averaged (Definition 1)     : {:.2}",
        report.edge_averaged
    );
    println!(
        "edge-averaged (one endpoint, fn.2): {:.2}",
        report.edge_averaged_one_endpoint
    );
    println!("worst node completion            : {}", report.node_worst);
    println!(
        "termination-time node average    : {:.2}",
        report.node_averaged_termination
    );
    match run.transcript.peak_message_bits() {
        Some(bits) => println!("CONGEST audit: peak message size = {bits} bits"),
        None => println!("CONGEST audit: skipped (transcript policy)"),
    }

    // The registry makes sweeping every algorithm a three-line loop;
    // one shared Workspace reuses the engine arenas across the runs.
    // The forest-only `*/tree-rc` entries run on a same-size random
    // tree — `requires_tree()` is the domain flag every consumer
    // (sweep, fuzz, this loop) checks before pairing.
    let tree = gen::random_tree(g.n(), &mut rng);
    println!("\nregistry sweep (node-avg; `*/tree-rc` on a same-size tree):");
    let mut ws = Workspace::new();
    for algo in registry().iter() {
        if algo.problem().min_degree() > g.min_degree() {
            continue;
        }
        let g = if algo.requires_tree() { &tree } else { &g };
        let r = algo.execute_in(g, &RunSpec::new(7), &mut ws);
        r.verify(g).expect("every registered algorithm is valid");
        println!(
            "  {:<18} {:<22} {:>8.2}",
            algo.name(),
            algo.problem().label(),
            r.report(g).node_averaged
        );
    }
}
