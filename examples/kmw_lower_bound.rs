//! Walk through the paper's §4 lower-bound machinery: build the cluster
//! tree CT_k and the base graph G_k, lift it (Corollary 15), verify the
//! 𝒢_k biregularity requirements, exhibit the Theorem 11 view isomorphism,
//! and watch Luby's MIS stall on S(c0).
//!
//! ```text
//! cargo run --release --example kmw_lower_bound
//! ```

use localavg::core::algo::{registry, RunSpec};
use localavg::graph::rng::Rng;
use localavg::lowerbound::base_graph::{BaseGraph, LiftedGk};
use localavg::lowerbound::cluster_tree::ClusterTree;
use localavg::lowerbound::isomorphism;

fn main() {
    let (k, beta, q) = (1usize, 4u64, 16usize);

    let ct = ClusterTree::new(k);
    println!(
        "CT_{k}: {} skeleton nodes, {} labeled edges (Figure 1)",
        ct.node_count(),
        ct.edges().len()
    );

    let base = BaseGraph::build(k, beta, 4_000_000).expect("G_k");
    base.verify_requirements().expect("𝒢_k membership");
    base.verify_clique_cover().expect("Lemma 13 certificate");
    println!(
        "G_{k} (β={beta}): n={}, m={}, |S(c0)|={}",
        base.graph.n(),
        base.graph.m(),
        base.s0().len()
    );

    let mut rng = Rng::seed_from(8);
    let lg = LiftedGk::build(base, q, &mut rng);
    println!(
        "lifted G̃_{k} (q={q}): n={}, tree-like S(c0) fraction at radius {k}: {:.2}",
        lg.graph().n(),
        lg.s0_tree_like_fraction(k)
    );

    // Theorem 11: indistinguishable views across S(c0) and S(c1).
    let (v0, v1) = isomorphism::tree_like_pair(&lg, k).expect("tree-like pair");
    let phi = isomorphism::find_isomorphism(&lg, k, v0, v1).expect("Algorithm 1");
    isomorphism::verify_isomorphism(&lg, k, v0, v1, &phi).expect("isomorphism verified");
    println!(
        "Algorithm 1: radius-{k} views of {v0} ∈ S(c0) and {v1} ∈ S(c1) are isomorphic ({} nodes)",
        phi.len()
    );

    // Theorem 16's consequence: Luby cannot decide most of S(c0) quickly.
    let run = registry()
        .get("mis/luby")
        .expect("registered")
        .execute(lg.graph(), &RunSpec::new(3));
    run.verify(lg.graph()).expect("valid MIS");
    let report = run.report(lg.graph());
    let s0 = lg.s0();
    let undecided = s0
        .iter()
        .filter(|&&v| run.transcript.node_commit_round[v] > 3 * k)
        .count() as f64
        / s0.len() as f64;
    println!(
        "Luby MIS: node-averaged = {:.2}; {:.0}% of S(c0) still undecided after {} rounds",
        report.node_averaged,
        undecided * 100.0,
        3 * k
    );
}
